// Hybrid partition spec: round-trip, hand-written documents, rejection of
// malformed/unknown content (a spec is a safety artefact).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/hybrid_spec.hpp"

namespace {

using namespace hybridcnn;
using core::HybridConfig;
using core::load_spec;
using core::parse_spec;
using core::QualifierSource;
using core::save_spec;
using core::to_spec;

HybridConfig exotic_config() {
  HybridConfig cfg;
  cfg.scheme = "tmr";
  cfg.policy.bucket_factor = 3;
  cfg.policy.bucket_ceiling = 7;
  cfg.policy.max_retries_per_op = 9;
  cfg.critical_classes = {0, 4, 17};
  cfg.dependable_filter = 5;
  cfg.qualifier.sides = 6;
  cfg.qualifier.samples = 240;
  cfg.qualifier.match.sax.word_length = 24;
  cfg.qualifier.match.sax.alphabet = 6;
  cfg.qualifier.match.mindist_threshold = 2.25;
  cfg.qualifier.match.corner_tolerance = 2;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMap;
  cfg.fault_config.kind = faultsim::FaultKind::kIntermittent;
  cfg.fault_config.probability = 1.5e-5;
  cfg.fault_config.bit = 17;
  cfg.fault_config.num_pes = 64;
  cfg.fault_config.burst_continue = 0.75;
  cfg.fault_seed = 999;
  return cfg;
}

void expect_equal(const HybridConfig& a, const HybridConfig& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.policy.bucket_factor, b.policy.bucket_factor);
  EXPECT_EQ(a.policy.bucket_ceiling, b.policy.bucket_ceiling);
  EXPECT_EQ(a.policy.max_retries_per_op, b.policy.max_retries_per_op);
  EXPECT_EQ(a.critical_classes, b.critical_classes);
  EXPECT_EQ(a.dependable_filter, b.dependable_filter);
  EXPECT_EQ(a.qualifier.sides, b.qualifier.sides);
  EXPECT_EQ(a.qualifier.samples, b.qualifier.samples);
  EXPECT_EQ(a.qualifier.match.sax.word_length,
            b.qualifier.match.sax.word_length);
  EXPECT_EQ(a.qualifier.match.sax.alphabet, b.qualifier.match.sax.alphabet);
  EXPECT_DOUBLE_EQ(a.qualifier.match.mindist_threshold,
                   b.qualifier.match.mindist_threshold);
  EXPECT_EQ(a.qualifier.match.corner_tolerance,
            b.qualifier.match.corner_tolerance);
  EXPECT_EQ(a.qualifier.source, b.qualifier.source);
  EXPECT_EQ(a.fault_config.kind, b.fault_config.kind);
  EXPECT_DOUBLE_EQ(a.fault_config.probability, b.fault_config.probability);
  EXPECT_EQ(a.fault_config.bit, b.fault_config.bit);
  EXPECT_EQ(a.fault_config.num_pes, b.fault_config.num_pes);
  EXPECT_DOUBLE_EQ(a.fault_config.burst_continue,
                   b.fault_config.burst_continue);
  EXPECT_EQ(a.fault_seed, b.fault_seed);
}

TEST(HybridSpec, DefaultRoundTrips) {
  const HybridConfig original;
  expect_equal(parse_spec(to_spec(original)), original);
}

TEST(HybridSpec, ExoticRoundTrips) {
  const HybridConfig original = exotic_config();
  expect_equal(parse_spec(to_spec(original)), original);
}

TEST(HybridSpec, FileRoundTrips) {
  const std::string path = "/tmp/hybridcnn_spec_test.txt";
  const HybridConfig original = exotic_config();
  save_spec(original, path);
  expect_equal(load_spec(path), original);
  std::remove(path.c_str());
}

TEST(HybridSpec, HandWrittenDocument) {
  const HybridConfig cfg = parse_spec(
      "# a comment\n"
      "scheme = dmr\n"
      "bucket_factor = 2   # trailing comment\n"
      "critical_classes = 0 1\n"
      "\n"
      "qualifier_source = full_resolution\n");
  EXPECT_EQ(cfg.scheme, "dmr");
  EXPECT_EQ(cfg.policy.bucket_factor, 2u);
  EXPECT_TRUE(cfg.critical_classes.contains(0));
  EXPECT_TRUE(cfg.critical_classes.contains(1));
  EXPECT_EQ(cfg.qualifier.source, QualifierSource::kFullResolution);
}

TEST(HybridSpec, MissingKeysKeepDefaults) {
  const HybridConfig defaults;
  const HybridConfig cfg = parse_spec("scheme = tmr\n");
  EXPECT_EQ(cfg.scheme, "tmr");
  EXPECT_EQ(cfg.policy.bucket_ceiling, defaults.policy.bucket_ceiling);
  EXPECT_EQ(cfg.qualifier.sides, defaults.qualifier.sides);
}

TEST(HybridSpec, RejectsUnknownKey) {
  EXPECT_THROW(parse_spec("buckte_factor = 2\n"), std::invalid_argument);
}

TEST(HybridSpec, RejectsUnknownScheme) {
  EXPECT_THROW(parse_spec("scheme = quintuple\n"), std::invalid_argument);
}

TEST(HybridSpec, RejectsMalformedLine) {
  EXPECT_THROW(parse_spec("scheme dmr\n"), std::invalid_argument);
}

TEST(HybridSpec, RejectsBadNumbers) {
  EXPECT_THROW(parse_spec("bucket_factor = two\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("fault_probability = often\n"),
               std::invalid_argument);
}

TEST(HybridSpec, RejectsUnknownEnumValues) {
  EXPECT_THROW(parse_spec("fault_kind = cosmic\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("qualifier_source = psychic\n"),
               std::invalid_argument);
}

TEST(HybridSpec, LoadSpecMissingFileThrows) {
  EXPECT_THROW(load_spec("/tmp/definitely_missing_spec_881.txt"),
               std::runtime_error);
}

TEST(HybridSpec, QualifierPolicyFollowsKernelPolicy) {
  const HybridConfig cfg =
      parse_spec("bucket_factor = 5\nbucket_ceiling = 9\n");
  EXPECT_EQ(cfg.qualifier.policy.bucket_factor, 5u);
  EXPECT_EQ(cfg.qualifier.policy.bucket_ceiling, 9u);
}

}  // namespace
