// serve::InferenceService: per-session seed-stream determinism under
// concurrent submission, backpressure policies, drain/shutdown
// lifecycle and the stats snapshot.
//
// The load-bearing property: N OS threads submitting interleaved
// requests through distinct Sessions must yield, per session, results
// bit-identical to a serial classify(image, stream) loop over the same
// seed stream — at 1, 2 and 8 pool threads. (This suite runs under the
// ASan/UBSan and TSan CI jobs.)
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"
#include "serve/inference_service.hpp"

namespace {

using namespace hybridcnn;
using core::FaultSeedStream;
using core::HybridClassification;
using core::HybridConfig;
using core::HybridNetwork;
using core::QualifierSource;
using runtime::ComputeContext;
using serve::InferenceService;
using serve::ServiceConfig;
using tensor::Tensor;

std::shared_ptr<const HybridNetwork> make_shared_net(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 96 -> 45
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 45 -> 22
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 22 * 22, 5);
  nn::init_network(*net, seed);
  // A fault rate high enough that the seed assignment is observable:
  // a request classified with the wrong seed would (with overwhelming
  // probability) carry different injector evidence.
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kFullResolution;
  cfg.fault_config.kind = faultsim::FaultKind::kTransient;
  cfg.fault_config.probability = 2e-5;
  cfg.fault_config.bit = -1;
  return std::make_shared<const HybridNetwork>(std::move(net), 0, cfg);
}

std::vector<Tensor> make_images(std::size_t n, std::uint64_t salt) {
  std::vector<Tensor> images;
  images.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::RenderParams p;
    p.cls = static_cast<data::SignClass>((i + salt) % data::kNumClasses);
    p.size = 96;
    p.rotation = 0.05 * static_cast<double>(i) - 0.1;
    p.scale = 0.72 + 0.03 * static_cast<double>((i + salt) % 3);
    p.noise_seed = 40 + salt * 100 + i;
    images.push_back(data::render_sign(p));
  }
  return images;
}

void expect_identical(const HybridClassification& a,
                      const HybridClassification& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.predicted_class, b.predicted_class);
  EXPECT_EQ(a.confidence, b.confidence);  // bit-identical double
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.qualifier.match, b.qualifier.match);
  EXPECT_EQ(a.qualifier.shape.distance, b.qualifier.shape.distance);
  EXPECT_EQ(a.qualifier.report.detected_errors,
            b.qualifier.report.detected_errors);
  EXPECT_EQ(a.conv1_report.ok, b.conv1_report.ok);
  EXPECT_EQ(a.conv1_report.detected_errors, b.conv1_report.detected_errors);
  EXPECT_EQ(a.conv1_report.retries, b.conv1_report.retries);
}

class InferenceServiceThreads
    : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { ComputeContext::set_global_threads(GetParam()); }
  void TearDown() override { ComputeContext::set_global_threads(1); }
};

TEST_P(InferenceServiceThreads, SingleSessionMatchesSerialClassifyLoop) {
  const auto net = make_shared_net(11);
  const std::vector<Tensor> images = make_images(6, 0);

  InferenceService service(net);
  std::vector<std::future<HybridClassification>> futures;
  futures.reserve(images.size());
  for (const Tensor& img : images) futures.push_back(service.submit(img));

  // The default session starts at the network's fault_seed base: the
  // serial replay is a plain classify loop over seed_stream().
  FaultSeedStream seeds = net->seed_stream();
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_identical(futures[i].get(), net->classify(images[i], seeds),
                     "default session");
  }
}

TEST_P(InferenceServiceThreads, ConcurrentSessionsAreDeterministicPerSession) {
  // The acceptance property: N OS threads × distinct sessions, requests
  // interleaving freely in the shared queue and coalescing into mixed
  // micro-batches — yet each session's results replay serially.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5;
  const auto net = make_shared_net(13);

  std::vector<std::vector<Tensor>> images;
  for (std::size_t t = 0; t < kThreads; ++t) {
    images.push_back(make_images(kPerThread, t));
  }

  ServiceConfig cfg;
  cfg.max_batch = 3;  // force multi-request (and cross-session) batches
  InferenceService service(net, cfg);

  std::vector<std::vector<std::future<HybridClassification>>> futures(
      kThreads);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      auto session = service.open_session(1000 + 50 * t);
      for (const Tensor& img : images[t]) {
        futures[t].push_back(session.submit(img));
      }
    });
  }
  for (auto& th : submitters) th.join();
  service.drain();

  for (std::size_t t = 0; t < kThreads; ++t) {
    FaultSeedStream seeds(1000 + 50 * t);
    for (std::size_t i = 0; i < kPerThread; ++i) {
      expect_identical(futures[t][i].get(),
                       net->classify(images[t][i], seeds),
                       "concurrent session replay");
    }
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, InferenceServiceThreads,
                         ::testing::Values<std::size_t>(1, 2, 8));

TEST(InferenceService, MixedSessionMicroBatchesKeepStreamsIndependent) {
  // One submitter alternating between two sessions: the dispatcher sees
  // interleaved seeds inside single micro-batches; each session must
  // still replay against its own stream.
  const auto net = make_shared_net(17);
  const std::vector<Tensor> images = make_images(6, 2);

  InferenceService service(net);
  auto a = service.open_session(7);
  auto b = service.open_session(7000);
  std::vector<std::future<HybridClassification>> fa, fb;
  for (const Tensor& img : images) {
    fa.push_back(a.submit(img));
    fb.push_back(b.submit(img));
  }

  FaultSeedStream sa(7), sb(7000);
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_identical(fa[i].get(), net->classify(images[i], sa), "session a");
    expect_identical(fb[i].get(), net->classify(images[i], sb), "session b");
  }
}

TEST(InferenceService, RejectPolicyShedsLoadAndPreservesAcceptedStream) {
  const auto net = make_shared_net(19);
  const std::vector<Tensor> images = make_images(4, 1);

  ServiceConfig cfg;
  cfg.queue_capacity = 2;
  cfg.max_batch = 1;
  cfg.overflow = serve::OverflowPolicy::kReject;
  InferenceService service(net, cfg);
  auto session = service.open_session(500);

  // Burst far more submissions than the queue admits. Submission is
  // microseconds, classification milliseconds — rejections must occur.
  constexpr std::size_t kBurst = 64;
  std::vector<const Tensor*> accepted_images;
  std::vector<std::future<HybridClassification>> futures;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const Tensor& img = images[i % images.size()];
    try {
      futures.push_back(session.submit(img));
      accepted_images.push_back(&img);
    } catch (const serve::QueueFullError&) {
      ++rejected;
    }
  }
  service.drain();

  EXPECT_GT(rejected, 0u) << "burst never overflowed a 2-deep queue";
  EXPECT_EQ(service.stats().rejected, rejected);
  EXPECT_EQ(service.stats().completed, futures.size());

  // Rejected submissions consumed no seed: the accepted subsequence
  // replays against consecutive seeds from the session base.
  FaultSeedStream seeds(500);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_identical(futures[i].get(),
                     net->classify(*accepted_images[i], seeds),
                     "accepted subsequence replay");
  }
}

TEST(InferenceService, StatsAddUpAfterDrain) {
  const auto net = make_shared_net(23);
  const std::vector<Tensor> images = make_images(7, 3);

  ServiceConfig cfg;
  cfg.max_batch = 4;
  InferenceService service(net, cfg);
  std::vector<std::future<HybridClassification>> futures;
  for (const Tensor& img : images) futures.push_back(service.submit(img));
  service.drain();

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, images.size());
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.peak_queue_depth, 1u);

  ASSERT_EQ(stats.batch_size_histogram.size(), cfg.max_batch + 1);
  std::uint64_t batches = 0, weighted = 0;
  for (std::size_t s = 0; s < stats.batch_size_histogram.size(); ++s) {
    batches += stats.batch_size_histogram[s];
    weighted += s * stats.batch_size_histogram[s];
  }
  EXPECT_EQ(batches, stats.batches);
  EXPECT_EQ(weighted, stats.completed + stats.failed);
  EXPECT_GT(stats.p50_latency_us, 0.0);
  EXPECT_LE(stats.p50_latency_us, stats.p99_latency_us);
  EXPECT_LE(stats.p99_latency_us, stats.max_latency_us);

  for (auto& f : futures) EXPECT_NO_THROW(static_cast<void>(f.get()));
}

TEST(InferenceService, InvalidImageThrowsAtSubmitWithoutConsumingASeed) {
  const auto net = make_shared_net(29);
  InferenceService service(net);
  auto session = service.open_session(42);

  EXPECT_THROW(static_cast<void>(
                   session.submit(Tensor(tensor::Shape{1, 3, 96, 96}))),
               std::invalid_argument);

  // The next valid request must get the session's *first* seed.
  const Tensor img = data::render_stop_sign(96, 4.0);
  auto future = session.submit(img);
  FaultSeedStream seeds(42);
  expect_identical(future.get(), net->classify(img, seeds),
                   "seed untouched by invalid submit");
}

TEST(InferenceService, ShutdownCompletesAcceptedAndRefusesNew) {
  const auto net = make_shared_net(31);
  const std::vector<Tensor> images = make_images(3, 4);

  auto service = std::make_unique<InferenceService>(net);
  std::vector<std::future<HybridClassification>> futures;
  for (const Tensor& img : images) futures.push_back(service->submit(img));
  service->shutdown();

  // Everything accepted before shutdown resolves...
  FaultSeedStream seeds = net->seed_stream();
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_identical(futures[i].get(), net->classify(images[i], seeds),
                     "pre-shutdown tail");
  }
  // ...and later submissions fail fast. shutdown is idempotent and the
  // destructor tolerates an already-stopped service.
  EXPECT_THROW(static_cast<void>(service->submit(images[0])),
               serve::ServiceStoppedError);
  service->shutdown();
  service.reset();
}

}  // namespace
