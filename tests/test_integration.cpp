// Cross-module integration: trained hybrid pipeline end to end, fault
// campaigns through the full classify path, and the no-SDC system
// property at the decision level.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_network.hpp"
#include "data/dataset.hpp"
#include "data/renderer.hpp"
#include "faultsim/campaign.hpp"
#include "faultsim/memory_faults.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace hybridcnn;
using core::Decision;
using core::FaultSeedStream;
using core::HybridConfig;
using core::HybridNetwork;
using tensor::Shape;
using tensor::Tensor;

/// CNN over 96x96 images, small enough to *train* inside a test.
std::unique_ptr<nn::Sequential> make_trainable_net(std::uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 96 -> 45
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 45 -> 22
  net->emplace<nn::Conv2d>(8, 16, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(2, 2);  // 22 -> 11
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(16 * 11 * 11, 5);
  nn::init_network(*net, seed);
  return net;
}

/// One classification over a fresh caller-owned stream at the network's
/// configured base.
core::HybridClassification classify_once(const HybridNetwork& net,
                                         const Tensor& img) {
  FaultSeedStream seeds = net.seed_stream();
  return net.classify(img, seeds);
}

data::DatasetConfig image96() {
  data::DatasetConfig cfg;
  cfg.image_size = 96;
  return cfg;
}

TEST(Integration, TrainedHybridQualifiesTrueStopAndDemotesImpostors) {
  // Train the CNN (with the dependable Sobel filter already installed and
  // frozen, as the hybrid workflow prescribes), then check the combined
  // decisions on clean test renders.
  HybridConfig cfg;
  cfg.critical_classes = {static_cast<int>(data::SignClass::kStop)};
  HybridNetwork hybrid(make_trainable_net(31), 0, cfg);

  const auto train_data = data::make_dataset(25, image96(), 301);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 25;
  tc.learning_rate = 0.01f;
  nn::train(hybrid.cnn(), train_data, tc);

  // A clean stop sign: prediction stop, qualified reliable.
  FaultSeedStream seeds = hybrid.seed_stream();
  const Tensor stop = data::render_stop_sign(96, 5.0);
  const auto r_stop = hybrid.classify(stop, seeds);
  ASSERT_EQ(r_stop.predicted_class, static_cast<int>(data::SignClass::kStop))
      << "training failed to learn the stop class";
  EXPECT_EQ(r_stop.decision, Decision::kQualifiedReliable);

  // Non-stop signs: whatever the CNN answers, no reliable stop positive.
  for (const auto cls :
       {data::SignClass::kSpeedLimit, data::SignClass::kParking,
        data::SignClass::kYield}) {
    data::RenderParams p;
    p.cls = cls;
    p.size = 96;
    p.scale = 0.8;
    const auto r = hybrid.classify(data::render_sign(p), seeds);
    EXPECT_FALSE(r.reliable_positive())
        << data::class_name(cls) << " produced a reliable stop positive";
  }
}

TEST(Integration, DecisionLevelCampaignHasNoSilentCorruption) {
  // System-level reliability guarantee: across fault seeds, every classify
  // either reproduces the fault-free decision exactly or reports failure.
  const Tensor img = data::render_stop_sign(96, 3.0);

  HybridNetwork golden(make_trainable_net(41), 0, HybridConfig{});
  const auto g = classify_once(golden, img);

  faultsim::CampaignSummary summary;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    HybridConfig cfg;
    cfg.fault_config.kind = faultsim::FaultKind::kTransient;
    cfg.fault_config.probability = 2e-6;
    cfg.fault_config.bit = -1;
    cfg.fault_seed = seed;
    HybridNetwork hybrid(make_trainable_net(41), 0, cfg);
    const auto r = classify_once(hybrid, img);

    const bool faults = r.conv1_report.detected_errors > 0 ||
                        !r.conv1_report.ok || !r.qualifier.report.ok;
    const bool aborted = !r.conv1_report.ok || !r.qualifier.report.ok;
    const bool matches = r.predicted_class == g.predicted_class &&
                         r.qualifier.match == g.qualifier.match;
    summary.add(faultsim::classify(faults, aborted, matches));
  }
  EXPECT_EQ(summary.silent_corruption, 0u);
  EXPECT_GT(summary.corrected + summary.correct, 0u);
}

TEST(Integration, IntermittentBurstsTripFailStop) {
  // Bursty faults defeat single-op retry (the retried op fails again):
  // exactly the persistent-error case the leaky bucket must latch.
  const Tensor img = data::render_stop_sign(96, 0.0);
  int fail_stops = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    HybridConfig cfg;
    cfg.fault_config.kind = faultsim::FaultKind::kIntermittent;
    cfg.fault_config.probability = 5e-4;
    cfg.fault_config.burst_continue = 0.98;
    cfg.fault_config.num_pes = 1;  // bursts hit consecutive executions
    cfg.fault_config.bit = -1;
    cfg.fault_seed = seed;
    HybridNetwork hybrid(make_trainable_net(51), 0, cfg);
    if (!classify_once(hybrid, img).conv1_report.ok) ++fail_stops;
  }
  EXPECT_GT(fail_stops, 0)
      << "long bursts must exhaust the leaky bucket at least once";
}

TEST(Integration, WeightMemoryCorruptionIsOutsideTheGuarantee) {
  // The paper's scheme protects *execution*; corrupted weights are
  // faithfully (reliably) convolved. This test documents that boundary:
  // execution reports stay clean even though outputs change.
  auto net_a = make_trainable_net(61);
  auto net_b = make_trainable_net(61);

  auto& conv_b = net_b->layer_as<nn::Conv2d>(0);
  util::Rng rng(7);
  faultsim::inject_exact_flips(conv_b.weights(), 64, rng);

  HybridNetwork a(std::move(net_a), 0, HybridConfig{});
  HybridNetwork b(std::move(net_b), 0, HybridConfig{});
  const Tensor img = data::render_stop_sign(96, 0.0);
  const auto ra = classify_once(a, img);
  const auto rb = classify_once(b, img);
  EXPECT_TRUE(ra.conv1_report.ok);
  EXPECT_TRUE(rb.conv1_report.ok)
      << "execution itself is clean; corruption is in the data";
  // Confidences almost surely differ (prediction may or may not).
  EXPECT_NE(ra.confidence, rb.confidence);
}

TEST(Integration, ReliableSchemesProduceIdenticalDecisions) {
  // simplex / dmr / tmr are different mechanisms over the same
  // mathematics: fault-free, all three must agree bit-for-bit.
  const Tensor img = data::render_stop_sign(96, 8.0);
  std::vector<core::HybridClassification> results;
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    HybridConfig cfg;
    cfg.scheme = scheme;
    HybridNetwork hybrid(make_trainable_net(71), 0, cfg);
    results.push_back(classify_once(hybrid, img));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].predicted_class, results[0].predicted_class);
    EXPECT_EQ(results[i].confidence, results[0].confidence);
    EXPECT_EQ(results[i].qualifier.match, results[0].qualifier.match);
  }
}

}  // namespace
