// Intermittent (checkpointed) execution: classify_intermittent must
// survive every injected power-cycle trace and resume bit-identically —
// the final classification equals the uninterrupted classify() with the
// same seed, for EVERY cut point.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "faultsim/power.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn;
using core::FaultSeedStream;
using core::HybridClassification;
using core::HybridConfig;
using core::HybridNetwork;
using faultsim::PowerSchedule;
using faultsim::PowerTrace;
using tensor::Tensor;

std::unique_ptr<nn::Sequential> make_testnet(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, seed);
  return net;
}

Tensor stop_image() { return data::render_stop_sign(128, 6.0); }

/// Bitwise comparison of everything a downstream consumer observes.
void expect_same_classification(const HybridClassification& a,
                                const HybridClassification& b) {
  EXPECT_EQ(a.predicted_class, b.predicted_class);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.safety_critical, b.safety_critical);
  EXPECT_EQ(a.qualifier.match, b.qualifier.match);
  EXPECT_EQ(a.qualifier.shape.distance, b.qualifier.shape.distance);
  EXPECT_EQ(a.conv1_report.ok, b.conv1_report.ok);
}

// ------------------------------------------------------- power schedule

TEST(PowerSchedule, EmptyTraceIsStablePower) {
  const PowerTrace trace;
  PowerSchedule sched(trace);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sched.step());
  EXPECT_EQ(sched.cycles(), 0u);
}

TEST(PowerSchedule, BudgetsCutAfterConfiguredSteps) {
  const PowerTrace trace = PowerTrace::periodic(2, 2);
  PowerSchedule sched(trace);
  EXPECT_TRUE(sched.step());
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step()) << "third step exceeds the 2-step budget";
  EXPECT_TRUE(sched.step());
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  // Trace exhausted: stable from here.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(sched.step());
  EXPECT_EQ(sched.cycles(), 2u);
}

TEST(PowerSchedule, ZeroBudgetIsImmediateBrownOut) {
  const PowerTrace trace = PowerTrace::periodic(0, 3);
  PowerSchedule sched(trace);
  EXPECT_FALSE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(sched.cycles(), 3u);
}

TEST(PowerSchedule, SampledTraceDeterministicForSeed) {
  util::Rng a(5);
  util::Rng b(5);
  const PowerTrace ta = PowerTrace::sampled(a, 8, 0, 3);
  const PowerTrace tb = PowerTrace::sampled(b, 8, 0, 3);
  EXPECT_EQ(ta.budgets, tb.budgets);
  ASSERT_EQ(ta.budgets.size(), 8u);
  for (const std::size_t budget : ta.budgets) EXPECT_LE(budget, 3u);
}

// ------------------------------------------------ intermittent classify

TEST(Intermittent, StablePowerMatchesClassifyExactly) {
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  FaultSeedStream seeds = net.seed_stream();
  const auto r = net.classify_intermittent(img, seeds, PowerTrace{});
  expect_same_classification(r.classification, ref);
  EXPECT_EQ(r.power_cycles, 0u);
  // 5 layers, conv1 + qualifier fused into step 0: 5 steps, no retries.
  EXPECT_EQ(r.steps_committed, 5u);
  EXPECT_EQ(r.steps_executed, 5u);
  EXPECT_EQ(seeds.peek(), ref_seeds.peek()) << "consumes exactly one seed";
}

TEST(Intermittent, EveryCutPointResumesBitIdentically) {
  // The acceptance criterion: for EVERY possible power-cut point —
  // including repeated cuts at the same step and a cut during the
  // expensive dependable stage — the resumed classification is
  // bit-identical to the uninterrupted one.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  constexpr std::size_t kSteps = 5;
  for (std::size_t cut = 0; cut < kSteps; ++cut) {
    // One cut after `cut` completed steps, then stable power.
    PowerTrace trace;
    trace.budgets = {cut};
    FaultSeedStream seeds = net.seed_stream();
    const auto r = net.classify_intermittent(img, seeds, trace);
    expect_same_classification(r.classification, ref);
    EXPECT_EQ(r.power_cycles, 1u) << "cut " << cut;
    EXPECT_EQ(r.steps_committed, kSteps) << "cut " << cut;
    EXPECT_EQ(r.steps_executed, kSteps + 1)
        << "exactly the interrupted step re-executes (cut " << cut << ")";
  }
}

TEST(Intermittent, SurvivesBudgetOneThrashing) {
  // Worst sustainable environment: every window completes exactly one
  // step before dying. Progress is one commit per window; the result
  // must still be bit-identical.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  FaultSeedStream seeds = net.seed_stream();
  const auto r =
      net.classify_intermittent(img, seeds, PowerTrace::periodic(1, 4));
  expect_same_classification(r.classification, ref);
  EXPECT_EQ(r.power_cycles, 4u);
  EXPECT_EQ(r.steps_committed, 5u);
  EXPECT_EQ(r.steps_executed, 9u) << "4 cuts each lose one in-flight step";
}

TEST(Intermittent, SurvivesZeroBudgetBrownOuts) {
  // Brown-out windows that fail before any step completes must not make
  // negative progress or hang; the trace eventually exhausts.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  FaultSeedStream seeds = net.seed_stream();
  const auto r =
      net.classify_intermittent(img, seeds, PowerTrace::periodic(0, 6));
  expect_same_classification(r.classification, ref);
  EXPECT_EQ(r.power_cycles, 6u);
  EXPECT_EQ(r.steps_committed, 5u);
}

TEST(Intermittent, RandomTracesAllResumeBitIdentically) {
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  util::Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    const PowerTrace trace = PowerTrace::sampled(rng, 5, 0, 4);
    FaultSeedStream seeds = net.seed_stream();
    const auto r = net.classify_intermittent(img, seeds, trace);
    expect_same_classification(r.classification, ref);
    // Execution may complete before the trace exhausts, so not every
    // window produces a cut.
    EXPECT_LE(r.power_cycles, trace.budgets.size()) << "trial " << trial;
    EXPECT_EQ(r.steps_committed, 5u) << "trial " << trial;
  }
}

TEST(Intermittent, ArmedInjectorReplaysIdenticallyAcrossCuts) {
  // With compute faults armed, step 0 (the reliable stage) consumes
  // injector randomness. A cut during any step must replay from the
  // per-run seed, reproducing the exact same fault pattern — so the
  // interrupted run still matches the uninterrupted one bit for bit.
  HybridConfig cfg;
  cfg.fault_config.kind = faultsim::FaultKind::kTransient;
  cfg.fault_config.probability = 1e-4;
  const HybridNetwork net(make_testnet(), 0, cfg);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  for (std::size_t cut = 0; cut < 3; ++cut) {
    PowerTrace trace;
    trace.budgets = {cut, 1};
    FaultSeedStream seeds = net.seed_stream();
    const auto r = net.classify_intermittent(img, seeds, trace);
    expect_same_classification(r.classification, ref);
  }
}

// ----------------------------------- checkpoint-slot memory corruption

TEST(Intermittent, EccCheckpointSurvivesSlotUpsets) {
  // The committed checkpoint sits in (simulated) memory across power
  // cycles, so it takes SEUs too. With one upset injected into the slot
  // at every reboot and the slot ECC-protected, every flip is scrubbed
  // before the resumed step reads the activation — the classification
  // stays bit-identical to the uninterrupted run.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  core::CheckpointMemoryModel memory;
  memory.flips_per_cycle = 1;
  memory.ecc = true;
  FaultSeedStream seeds = net.seed_stream();
  const auto r = net.classify_intermittent(
      img, seeds, PowerTrace::periodic(1, 4), {}, memory);
  expect_same_classification(r.classification, ref);
  EXPECT_EQ(r.power_cycles, 4u);
  EXPECT_GT(r.checkpoint_bits_flipped, 0u);
  EXPECT_EQ(r.checkpoint_corrected, r.checkpoint_bits_flipped)
      << "a single upset per reboot is always scrub-correctable";
  EXPECT_EQ(r.checkpoint_uncorrectable, 0u);
}

TEST(Intermittent, CheckpointUpsetsAreDeterministicForSeed) {
  // The slot-corruption stream derives from the run seed alone: two
  // identical calls must agree bit for bit — with and without ECC.
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  for (const bool ecc : {false, true}) {
    core::CheckpointMemoryModel memory;
    memory.flips_per_cycle = 3;
    memory.ecc = ecc;
    FaultSeedStream sa = net.seed_stream();
    FaultSeedStream sb = net.seed_stream();
    const auto a = net.classify_intermittent(
        img, sa, PowerTrace::periodic(1, 4), {}, memory);
    const auto b = net.classify_intermittent(
        img, sb, PowerTrace::periodic(1, 4), {}, memory);
    expect_same_classification(a.classification, b.classification);
    EXPECT_EQ(a.checkpoint_bits_flipped, b.checkpoint_bits_flipped) << ecc;
    EXPECT_EQ(a.checkpoint_corrected, b.checkpoint_corrected) << ecc;
    EXPECT_EQ(a.checkpoint_uncorrectable, b.checkpoint_uncorrectable) << ecc;
  }
}

TEST(Intermittent, UnprotectedCheckpointTakesUpsetsUncorrected) {
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  core::CheckpointMemoryModel memory;
  memory.flips_per_cycle = 1;
  memory.ecc = false;
  FaultSeedStream seeds = net.seed_stream();
  const auto r = net.classify_intermittent(
      img, seeds, PowerTrace::periodic(1, 4), {}, memory);
  EXPECT_GT(r.checkpoint_bits_flipped, 0u);
  EXPECT_EQ(r.checkpoint_corrected, 0u)
      << "without ECC nothing scrubs the slot";
  EXPECT_EQ(r.checkpoint_uncorrectable, 0u);
  EXPECT_EQ(r.steps_committed, 5u) << "execution still terminates";
}

TEST(Intermittent, DefaultMemoryModelLeavesTheSlotPristine) {
  const HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  FaultSeedStream ref_seeds = net.seed_stream();
  const HybridClassification ref = net.classify(img, ref_seeds);

  FaultSeedStream seeds = net.seed_stream();
  const auto r = net.classify_intermittent(
      img, seeds, PowerTrace::periodic(1, 4), {},
      core::CheckpointMemoryModel{});
  expect_same_classification(r.classification, ref);
  EXPECT_EQ(r.checkpoint_bits_flipped, 0u);
  EXPECT_EQ(r.checkpoint_corrected, 0u);
  EXPECT_EQ(r.checkpoint_uncorrectable, 0u);
}

}  // namespace
