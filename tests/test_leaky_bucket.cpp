// Leaky-bucket semantics, including the paper's exact claim: "a stream of
// correctly executed operations will cancel one, but not two successive
// errors."
#include <gtest/gtest.h>

#include "reliable/leaky_bucket.hpp"

namespace {

using hybridcnn::reliable::LeakyBucket;

TEST(LeakyBucket, StartsEmpty) {
  LeakyBucket b;
  EXPECT_EQ(b.level(), 0u);
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.errors(), 0u);
  EXPECT_EQ(b.successes(), 0u);
}

TEST(LeakyBucket, DefaultParameters) {
  LeakyBucket b;
  EXPECT_EQ(b.factor(), 2u);
  EXPECT_EQ(b.ceiling(), 4u);
}

TEST(LeakyBucket, RejectsZeroFactor) {
  EXPECT_THROW(LeakyBucket(0, 4), std::invalid_argument);
}

TEST(LeakyBucket, RejectsZeroCeiling) {
  EXPECT_THROW(LeakyBucket(2, 0), std::invalid_argument);
}

TEST(LeakyBucket, ErrorRaisesLevelByFactor) {
  LeakyBucket b(2, 10);
  b.record_error();
  EXPECT_EQ(b.level(), 2u);
  b.record_error();
  EXPECT_EQ(b.level(), 4u);
}

TEST(LeakyBucket, SuccessDecrementsByOneFlooredAtZero) {
  LeakyBucket b(2, 10);
  b.record_error();
  b.record_success();
  EXPECT_EQ(b.level(), 1u);
  b.record_success();
  EXPECT_EQ(b.level(), 0u);
  b.record_success();
  EXPECT_EQ(b.level(), 0u);  // floor zero
}

TEST(LeakyBucket, PaperClaim_SuccessStreamCancelsOneError) {
  LeakyBucket b;  // factor 2, ceiling 4
  EXPECT_FALSE(b.record_error());
  for (int i = 0; i < 10; ++i) b.record_success();
  EXPECT_EQ(b.level(), 0u);
  EXPECT_FALSE(b.exhausted());
  // A later single error is again tolerated.
  EXPECT_FALSE(b.record_error());
  EXPECT_FALSE(b.exhausted());
}

TEST(LeakyBucket, PaperClaim_TwoSuccessiveErrorsAreNotCancelled) {
  LeakyBucket b;  // factor 2, ceiling 4
  EXPECT_FALSE(b.record_error());
  EXPECT_TRUE(b.record_error());  // 2 + 2 == ceiling -> persistent
  EXPECT_TRUE(b.exhausted());
}

TEST(LeakyBucket, OneInterveningSuccessDoesNotPreventTrip) {
  // error (2), success (1), error (3) < 4: survives; another error trips.
  LeakyBucket b;
  b.record_error();
  b.record_success();
  EXPECT_FALSE(b.record_error());
  EXPECT_EQ(b.level(), 3u);
  EXPECT_TRUE(b.record_error());
}

TEST(LeakyBucket, ExhaustionLatchesUntilReset) {
  LeakyBucket b;
  b.record_error();
  b.record_error();
  ASSERT_TRUE(b.exhausted());
  for (int i = 0; i < 100; ++i) b.record_success();
  EXPECT_TRUE(b.exhausted()) << "exhaustion must latch";
  b.reset();
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.level(), 0u);
}

TEST(LeakyBucket, PeakTracksHighWaterMark) {
  LeakyBucket b(1, 10);
  b.record_error();
  b.record_error();
  b.record_error();
  b.record_success();
  b.record_success();
  EXPECT_EQ(b.level(), 1u);
  EXPECT_EQ(b.peak(), 3u);
}

TEST(LeakyBucket, CountsErrorsAndSuccesses) {
  LeakyBucket b(1, 100);
  for (int i = 0; i < 7; ++i) b.record_error();
  for (int i = 0; i < 11; ++i) b.record_success();
  EXPECT_EQ(b.errors(), 7u);
  EXPECT_EQ(b.successes(), 11u);
}

TEST(LeakyBucket, LevelSaturatesAtCeiling) {
  LeakyBucket b(3, 4);
  b.record_error();
  b.record_error();
  EXPECT_EQ(b.level(), 4u);  // 6 would overshoot; clamped to ceiling
  EXPECT_TRUE(b.exhausted());
}

TEST(LeakyBucket, FactorLargerThanCeilingTripsImmediately) {
  LeakyBucket b(10, 4);
  EXPECT_TRUE(b.record_error());
  EXPECT_TRUE(b.exhausted());
}

// Parameterised: for every (factor, ceiling) with factor < ceiling <=
// 2*factor, the bucket implements exactly the paper's "one error
// recoverable, two successive errors persistent" behaviour.
class BucketPaperSemantics
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(BucketPaperSemantics, OneErrorRecoverableTwoNot) {
  const auto [factor, ceiling] = GetParam();
  ASSERT_LT(factor, ceiling);
  ASSERT_LE(ceiling, 2 * factor);

  LeakyBucket one(factor, ceiling);
  EXPECT_FALSE(one.record_error());
  for (std::uint32_t i = 0; i < factor; ++i) one.record_success();
  EXPECT_EQ(one.level(), 0u);
  EXPECT_FALSE(one.exhausted());

  LeakyBucket two(factor, ceiling);
  two.record_error();
  EXPECT_TRUE(two.record_error());
}

INSTANTIATE_TEST_SUITE_P(
    FactorCeilingGrid, BucketPaperSemantics,
    ::testing::Values(std::make_tuple(2u, 4u), std::make_tuple(2u, 3u),
                      std::make_tuple(3u, 5u), std::make_tuple(3u, 6u),
                      std::make_tuple(4u, 7u), std::make_tuple(4u, 8u),
                      std::make_tuple(5u, 9u), std::make_tuple(8u, 16u)));

// Parameterised: any error burst of ceil(ceiling/factor) successive errors
// trips the bucket regardless of prior success history.
class BucketBurst : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BucketBurst, SuccessHistoryDoesNotMaskBursts) {
  const std::uint32_t factor = GetParam();
  const std::uint32_t ceiling = 3 * factor;
  LeakyBucket b(factor, ceiling);
  for (int i = 0; i < 1000; ++i) b.record_success();
  // ceil(ceiling / factor) == 3 successive errors must trip.
  EXPECT_FALSE(b.record_error());
  EXPECT_FALSE(b.record_error());
  EXPECT_TRUE(b.record_error());
}

INSTANTIATE_TEST_SUITE_P(Factors, BucketBurst,
                         ::testing::Values(1u, 2u, 3u, 5u, 9u));

}  // namespace
