// MemoryFaultCampaign: corrupted-weight/input campaigns over the hybrid
// classify path — seed determinism, thread-count bit-identity, ECC
// protection semantics and scrub-cadence exposure accounting.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_network.hpp"
#include "core/memory_campaign.hpp"
#include "data/renderer.hpp"
#include "faultsim/memory_faults.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "runtime/compute_context.hpp"

namespace {

using namespace hybridcnn;
using core::FaultSeedStream;
using core::HybridConfig;
using core::HybridNetwork;
using core::MemoryCampaignConfig;
using core::MemoryFaultCampaign;
using faultsim::MemoryCampaignSummary;
using faultsim::MemoryTarget;
using runtime::ComputeContext;
using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<nn::Sequential> make_testnet(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);  // 128 -> 61
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool>(3, 2);  // 61 -> 30
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 30 * 30, 5);
  nn::init_network(*net, seed);
  return net;
}

Tensor stop_image() { return data::render_stop_sign(128, 6.0); }

class MemoryCampaignTest : public ::testing::Test {
 protected:
  void TearDown() override { ComputeContext::set_global_threads(1); }
};

TEST_F(MemoryCampaignTest, ZeroRateLeavesEveryRunIntact) {
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;  // zero-rate default model
  const MemoryFaultCampaign campaign(net, cfg);
  FaultSeedStream seeds = net.seed_stream();
  const MemoryCampaignSummary s = campaign.run(stop_image(), 4, seeds);
  EXPECT_EQ(s.runs, 4u);
  EXPECT_EQ(s.intact, 4u);
  EXPECT_EQ(s.bits_flipped, 0u);
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
  EXPECT_DOUBLE_EQ(s.safety(), 1.0);
}

TEST_F(MemoryCampaignTest, RejectsZeroScrubIntervalAndBadImage) {
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;
  cfg.scrub_interval = 0;
  EXPECT_THROW(MemoryFaultCampaign(net, cfg), std::invalid_argument);

  const MemoryFaultCampaign campaign(net, MemoryCampaignConfig{});
  FaultSeedStream seeds = net.seed_stream();
  EXPECT_THROW((void)campaign.run(Tensor(Shape{4, 4}), 1, seeds),
               std::invalid_argument);
}

TEST_F(MemoryCampaignTest, SummaryDeterministicForSeedBase) {
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;
  cfg.model.bit_error_rate = 1e-4;
  const MemoryFaultCampaign campaign(net, cfg);
  const Tensor img = stop_image();

  FaultSeedStream a(100);
  FaultSeedStream b(100);
  const MemoryCampaignSummary sa = campaign.run(img, 8, a);
  const MemoryCampaignSummary sb = campaign.run(img, 8, b);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.peek(), 108u) << "run consumes exactly `runs` seeds";
}

TEST_F(MemoryCampaignTest, SummariesBitIdenticalAcrossThreadCounts) {
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;
  cfg.model.exact_flips = 8;
  cfg.scrub_interval = 3;
  const MemoryFaultCampaign campaign(net, cfg);
  const Tensor img = stop_image();

  ComputeContext::set_global_threads(1);
  FaultSeedStream s1(7);
  const MemoryCampaignSummary one = campaign.run(img, 12, s1);

  ComputeContext::set_global_threads(2);
  FaultSeedStream s2(7);
  const MemoryCampaignSummary two = campaign.run(img, 12, s2);

  ComputeContext::set_global_threads(8);
  FaultSeedStream s8(7);
  const MemoryCampaignSummary eight = campaign.run(img, 12, s8);

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.runs, 12u);
}

TEST_F(MemoryCampaignTest, EccEliminatesSilentCorruption) {
  // Same upset environment with and without SEC-DED on the stored
  // weights: unprotected runs may silently corrupt or lean on the hybrid
  // evidence chain; protected runs either correct every upset or
  // fail-stop on an uncorrectable word — never silent.
  HybridNetwork net(make_testnet(), 0);
  const Tensor img = stop_image();

  MemoryCampaignConfig protected_cfg;
  protected_cfg.model.bit_error_rate = 1e-4;
  protected_cfg.ecc = true;
  const MemoryFaultCampaign with_ecc(net, protected_cfg);
  FaultSeedStream seeds(500);
  const MemoryCampaignSummary s = with_ecc.run(img, 16, seeds);

  EXPECT_EQ(s.runs, 16u);
  EXPECT_EQ(s.silent_corruption, 0u);
  EXPECT_EQ(s.qualifier_caught, 0u);
  EXPECT_GT(s.bits_flipped, 0u);
  EXPECT_GT(s.corrected, 0u) << "scrub must have repaired upset runs";
  EXPECT_GT(s.ecc_corrected_data + s.ecc_corrected_check, 0u);
  EXPECT_DOUBLE_EQ(s.safety(), 1.0);
}

TEST_F(MemoryCampaignTest, UnprotectedBurstCorruptsOrGetsCaught) {
  // 96 distinct flips per run in the conv1 weights, no ECC: enough runs
  // diverge from golden that the outcome split (caught vs silent) is
  // exercised; everything stays deterministic for the fixed seed base.
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;
  cfg.model.exact_flips = 96;
  const MemoryFaultCampaign campaign(net, cfg);
  FaultSeedStream seeds(900);
  const MemoryCampaignSummary s = campaign.run(stop_image(), 12, seeds);

  EXPECT_EQ(s.runs, 12u);
  // Exact-flip injection with scrub_interval 1: one epoch per run.
  EXPECT_EQ(s.bits_flipped, 96u * 12u);
  EXPECT_EQ(s.ecc_corrected_data + s.ecc_corrected_check, 0u);
  EXPECT_LT(s.availability(), 1.0)
      << "a 96-bit weight burst must perturb at least one run";
  EXPECT_EQ(s.intact + s.corrected + s.uncorrectable + s.qualifier_caught +
                s.silent_corruption,
            s.runs);
}

TEST_F(MemoryCampaignTest, ScrubIntervalScalesExposureEpochs) {
  // Run i accumulates (i % scrub_interval) + 1 epochs; with exact flips
  // the injected-bit total is a closed form of the run count.
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;
  cfg.model.exact_flips = 2;
  cfg.scrub_interval = 4;
  const MemoryFaultCampaign campaign(net, cfg);
  FaultSeedStream seeds(42);
  const MemoryCampaignSummary s = campaign.run(stop_image(), 8, seeds);
  // Epochs per run: 1,2,3,4,1,2,3,4 -> 20 epochs * 2 flips.
  EXPECT_EQ(s.bits_flipped, 40u);
}

TEST_F(MemoryCampaignTest, InputTargetBypassesEcc) {
  // ECC covers the stored model, not the sensor buffer: with the input
  // as the only target, protected campaigns see zero scrub activity.
  HybridNetwork net(make_testnet(), 0);
  MemoryCampaignConfig cfg;
  cfg.model.target = MemoryTarget::kInput;
  cfg.model.exact_flips = 16;
  cfg.ecc = true;
  const MemoryFaultCampaign campaign(net, cfg);
  FaultSeedStream seeds(5);
  const MemoryCampaignSummary s = campaign.run(stop_image(), 6, seeds);
  EXPECT_EQ(s.bits_flipped, 16u * 6u);
  EXPECT_EQ(s.ecc_corrected_data, 0u);
  EXPECT_EQ(s.ecc_corrected_check, 0u);
  EXPECT_EQ(s.ecc_uncorrectable_words, 0u);
}

TEST_F(MemoryCampaignTest, ArmedComputeFaultsUsePerRunGolden) {
  // With compute faults armed and NO memory corruption, run and golden
  // execute identically (same seed, pristine weights): every run must
  // classify intact, proving the per-run golden isolates the memory
  // effect instead of conflating it with injector noise.
  HybridConfig hcfg;
  hcfg.fault_config.kind = faultsim::FaultKind::kTransient;
  hcfg.fault_config.probability = 1e-5;
  HybridNetwork net(make_testnet(), 0, hcfg);
  const MemoryFaultCampaign campaign(net, MemoryCampaignConfig{});
  FaultSeedStream seeds = net.seed_stream();
  const MemoryCampaignSummary s = campaign.run(stop_image(), 6, seeds);
  EXPECT_EQ(s.intact, 6u);
  EXPECT_EQ(s.silent_corruption, 0u);
}

}  // namespace
