// Numerical gradient checks for every trainable/backward-capable layer.
// Central finite differences against analytic backward, on small shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/lrn.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn::nn;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

/// Scalar probe loss L = sum(weights ⊙ out), whose dL/dout == weights.
struct Probe {
  Tensor weights;
  explicit Probe(const Shape& out_shape, std::uint64_t seed) {
    Rng rng(seed);
    weights = Tensor(out_shape);
    weights.fill_normal(rng, 0.0f, 1.0f);
  }
  [[nodiscard]] double loss(const Tensor& out) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < out.count(); ++i) {
      acc += static_cast<double>(out[i]) * weights[i];
    }
    return acc;
  }
};

/// Max relative error between analytic and numeric gradients of `value`
/// entries, where forward() re-runs the layer after each perturbation.
double check_gradient(Tensor& value, const Tensor& analytic,
                      const std::function<double()>& loss_fn,
                      float epsilon = 1e-3f) {
  double worst = 0.0;
  for (std::size_t i = 0; i < value.count(); ++i) {
    const float saved = value[i];
    value[i] = saved + epsilon;
    const double up = loss_fn();
    value[i] = saved - epsilon;
    const double down = loss_fn();
    value[i] = saved;
    const double numeric = (up - down) / (2.0 * epsilon);
    const double denom =
        std::max({1.0, std::fabs(numeric), std::fabs(
                                               static_cast<double>(
                                                   analytic[i]))});
    worst = std::max(worst,
                     std::fabs(numeric - static_cast<double>(analytic[i])) /
                         denom);
  }
  return worst;
}

TEST(Gradients, ReLUInput) {
  ReLU relu;
  Rng rng(1);
  Tensor input(Shape{2, 3, 4, 4});
  input.fill_normal(rng, 0.0f, 1.0f);
  const Probe probe(input.shape(), 2);

  LayerCache cache;
  relu.forward_train(input, cache);
  const Tensor analytic = relu.backward(probe.weights, cache);
  const double err = check_gradient(input, analytic, [&] {
    return probe.loss(relu.forward_train(input, cache));
  });
  EXPECT_LT(err, 2e-2);  // kinks at 0 dominate the tolerance
}

TEST(Gradients, LinearInputAndParams) {
  Linear fc(6, 4);
  Rng rng(3);
  fc.init_he(rng);
  Tensor input(Shape{3, 6});
  input.fill_normal(rng, 0.0f, 1.0f);
  const Probe probe(Shape{3, 4}, 4);

  LayerCache cache;
  fc.forward_train(input, cache);
  const Tensor grad_in = fc.backward(probe.weights, cache);

  const auto loss_fn = [&] {
    return probe.loss(fc.forward_train(input, cache));
  };
  EXPECT_LT(check_gradient(input, grad_in, loss_fn), 2e-3);

  // Parameter gradients.
  fc.zero_grad();
  fc.forward_train(input, cache);
  fc.backward(probe.weights, cache);
  const auto params = fc.params();
  for (const Param& p : params) {
    EXPECT_LT(check_gradient(*p.value, *p.grad, loss_fn), 2e-3)
        << "param " << p.name;
  }
}

TEST(Gradients, Conv2dInputAndParams) {
  Conv2d conv(2, 3, 3, 2, 1);
  Rng rng(5);
  conv.init_he(rng);
  Tensor input(Shape{2, 2, 7, 7});
  input.fill_normal(rng, 0.0f, 1.0f);

  LayerCache cache;
  Tensor out = conv.forward_train(input, cache);
  const Probe probe(out.shape(), 6);
  const Tensor grad_in = conv.backward(probe.weights, cache);

  const auto loss_fn = [&] {
    return probe.loss(conv.forward_train(input, cache));
  };
  EXPECT_LT(check_gradient(input, grad_in, loss_fn), 5e-3);

  conv.zero_grad();
  conv.forward_train(input, cache);
  conv.backward(probe.weights, cache);
  for (const Param& p : conv.params()) {
    EXPECT_LT(check_gradient(*p.value, *p.grad, loss_fn), 5e-3)
        << "param " << p.name;
  }
}

TEST(Gradients, Conv2dFrozenFilterHasZeroGrad) {
  Conv2d conv(1, 2, 3, 1, 1);
  Rng rng(7);
  conv.init_he(rng);
  conv.set_filter_frozen(1, true);

  Tensor input(Shape{1, 1, 5, 5});
  input.fill_normal(rng, 0.0f, 1.0f);
  LayerCache cache;
  Tensor out = conv.forward_train(input, cache);
  const Probe probe(out.shape(), 8);
  conv.zero_grad();
  conv.backward(probe.weights, cache);

  const auto params = conv.params();
  const Tensor& gw = *params[0].grad;
  const Tensor& gb = *params[1].grad;
  // Filter 0 grads must be non-zero, filter 1 grads exactly zero.
  float sum0 = 0.0f;
  float sum1 = 0.0f;
  for (std::size_t i = 0; i < 9; ++i) {
    sum0 += std::fabs(gw[i]);
    sum1 += std::fabs(gw[9 + i]);
  }
  EXPECT_GT(sum0, 0.0f);
  EXPECT_EQ(sum1, 0.0f);
  EXPECT_EQ(gb[1], 0.0f);
}

TEST(Gradients, MaxPoolInput) {
  MaxPool pool(2, 2);
  Rng rng(9);
  Tensor input(Shape{1, 2, 6, 6});
  input.fill_normal(rng, 0.0f, 1.0f);

  LayerCache cache;
  Tensor out = pool.forward_train(input, cache);
  const Probe probe(out.shape(), 10);
  const Tensor grad_in = pool.backward(probe.weights, cache);
  const double err = check_gradient(
      input, grad_in,
      [&] { return probe.loss(pool.forward_train(input, cache)); },
      1e-4f);  // small eps so argmax does not switch
  EXPECT_LT(err, 1e-2);
}

TEST(Gradients, LrnInput) {
  Lrn lrn(5, 2.0f, 0.5f, 0.75f);  // larger alpha exercises the cross term
  Rng rng(11);
  Tensor input(Shape{1, 6, 3, 3});
  input.fill_normal(rng, 0.5f, 0.5f);

  LayerCache cache;
  lrn.forward_train(input, cache);
  const Probe probe(input.shape(), 12);
  const Tensor grad_in = lrn.backward(probe.weights, cache);
  const double err = check_gradient(input, grad_in, [&] {
    return probe.loss(lrn.forward_train(input, cache));
  });
  EXPECT_LT(err, 5e-3);
}

TEST(Gradients, SoftmaxInput) {
  Softmax sm;
  Rng rng(13);
  Tensor input(Shape{3, 5});
  input.fill_normal(rng, 0.0f, 1.0f);

  LayerCache cache;
  sm.forward_train(input, cache);
  const Probe probe(input.shape(), 14);
  const Tensor grad_in = sm.backward(probe.weights, cache);
  const double err = check_gradient(input, grad_in, [&] {
    return probe.loss(sm.forward_train(input, cache));
  });
  EXPECT_LT(err, 2e-3);
}

TEST(Gradients, SoftmaxCrossEntropyMatchesNumeric) {
  Rng rng(15);
  Tensor logits(Shape{4, 6});
  logits.fill_normal(rng, 0.0f, 2.0f);
  const std::vector<int> labels{1, 0, 5, 3};

  const LossResult res = softmax_cross_entropy(logits, labels);
  double worst = 0.0;
  constexpr float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.count(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double up = softmax_cross_entropy(logits, labels).loss;
    logits[i] = saved - eps;
    const double down = softmax_cross_entropy(logits, labels).loss;
    logits[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    worst = std::max(worst, std::fabs(numeric - res.grad_logits[i]));
  }
  EXPECT_LT(worst, 1e-4);
}

TEST(Gradients, LossValidatesInput) {
  Tensor logits(Shape{2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(Tensor(Shape{6}), {0}),
               std::invalid_argument);
}

}  // namespace
