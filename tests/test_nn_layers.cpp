// CNN layer forward semantics (shapes and known values).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "nn/alexnet.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/lrn.hpp"
#include "nn/maxpool.hpp"
#include "nn/minicnn.hpp"
#include "nn/relu.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax.hpp"
#include "reliable/executor.hpp"
#include "runtime/workspace.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn::nn;
using hybridcnn::tensor::Shape;

/// Calling-thread scratch arena for the const infer() calls below.
hybridcnn::runtime::Workspace& scratch() {
  return hybridcnn::runtime::thread_scratch();
}

using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d conv(1, 1, 3, 1, 1);
  Tensor f(Shape{1, 3, 3});
  f[4] = 1.0f;  // centre tap
  conv.set_filter(0, f);

  Tensor input(Shape{1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  const Tensor out = conv.infer(input, scratch());
  ASSERT_EQ(out.shape(), input.shape());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(Conv2d, KnownValueWithStrideAndBias) {
  Conv2d conv(1, 1, 2, 2, 0);
  Tensor f(Shape{1, 2, 2}, 1.0f);  // box sum
  conv.set_filter(0, f);
  conv.bias()[0] = 0.5f;

  Tensor input(Shape{1, 1, 4, 4}, 1.0f);
  const Tensor out = conv.infer(input, scratch());
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], 4.5f);
}

TEST(Conv2d, MatchesReliableReferenceConv) {
  // Cross-implementation check: the im2col engine and the reliability
  // kernel's reference loop must agree to float tolerance.
  Rng rng(3);
  Conv2d conv(3, 8, 5, 2, 2);
  conv.init_he(rng);

  Tensor input(Shape{1, 3, 17, 17});
  input.fill_normal(rng, 0.0f, 1.0f);

  const Tensor a = conv.infer(input, scratch());

  Tensor input_chw = input;
  input_chw.reshape(Shape{3, 17, 17});
  const hybridcnn::reliable::ReliableConv2d ref(
      conv.weights(), conv.bias(), hybridcnn::reliable::ConvSpec{2, 2});
  Tensor b = ref.reference_forward(input_chw);
  b.reshape(a.shape());
  EXPECT_LT(a.max_abs_diff(b), 2e-4f);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Conv2d conv(3, 4, 3, 1, 1);
  EXPECT_THROW(conv.infer(Tensor(Shape{1, 2, 8, 8}), scratch()),
               std::invalid_argument);
}

TEST(Conv2d, FilterSurgeryRoundTrip) {
  Rng rng(5);
  Conv2d conv(3, 4, 3, 1, 1);
  conv.init_he(rng);
  const Tensor original = conv.filter(2);
  Tensor replacement(Shape{3, 3, 3}, 0.25f);
  conv.set_filter(2, replacement);
  EXPECT_EQ(conv.filter(2), replacement);
  conv.set_filter(2, original);
  EXPECT_EQ(conv.filter(2), original);
}

TEST(Conv2d, FilterSurgeryValidation) {
  Conv2d conv(3, 4, 3, 1, 1);
  EXPECT_THROW(conv.filter(4), std::out_of_range);
  EXPECT_THROW(conv.set_filter(0, Tensor(Shape{3, 5, 5})),
               std::invalid_argument);
  EXPECT_THROW(conv.set_filter_frozen(4, true), std::out_of_range);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const Tensor in(Shape{4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -0.5f});
  const Tensor out = relu.infer(in, scratch());
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(ReLU, LvalueAndRvalueForwardsAreBitIdentical) {
  // The rvalue overload clamps in place; it must still agree with the
  // lvalue path bit-for-bit, including NaN -> 0 and -0.0 -> +0.0.
  const Tensor in(Shape{5},
                  std::vector<float>{std::nanf(""), -0.0f, -1.0f, 0.0f,
                                     2.5f});
  ReLU by_copy;
  ReLU by_move;
  const Tensor a = by_copy.infer(in, scratch());
  Tensor movable = in;
  const Tensor b = by_move.infer(std::move(movable), scratch());
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.count(); ++i) {
    const float av = a[i];
    const float bv = b[i];
    std::uint32_t abits = 0;
    std::uint32_t bbits = 0;
    std::memcpy(&abits, &av, sizeof(abits));
    std::memcpy(&bbits, &bv, sizeof(bbits));
    EXPECT_EQ(abits, bbits) << "element " << i;
  }
}

TEST(MaxPool, SelectsWindowMaxima) {
  MaxPool pool(2, 2);
  Tensor input(Shape{1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  const Tensor out = pool.infer(input, scratch());
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
  EXPECT_FLOAT_EQ(out[2], 13.0f);
  EXPECT_FLOAT_EQ(out[3], 15.0f);
}

TEST(MaxPool, OverlappingAlexNetStyle) {
  MaxPool pool(3, 2);
  EXPECT_EQ(pool.out_size(55), 27u);
  EXPECT_EQ(pool.out_size(27), 13u);
  EXPECT_THROW(static_cast<void>(pool.out_size(2)), std::invalid_argument);
}

TEST(Lrn, UnitInputKnownValue) {
  // Single channel, x = 1: y = 1 / (2 + 1e-4/5)^0.75.
  Lrn lrn;
  Tensor input(Shape{1, 1, 1, 1}, 1.0f);
  const Tensor out = lrn.infer(input, scratch());
  EXPECT_NEAR(out[0], std::pow(2.0f + 1e-4f / 5.0f, -0.75f), 1e-6);
}

TEST(Lrn, SuppressionGrowsWithNeighbourActivity) {
  Lrn lrn;
  Tensor weak(Shape{1, 5, 1, 1}, 0.0f);
  weak[2] = 1.0f;
  const float alone = lrn.infer(weak, scratch())[2];

  Tensor strong(Shape{1, 5, 1, 1}, 3.0f);
  strong[2] = 1.0f;
  const float crowded = lrn.infer(strong, scratch())[2];
  EXPECT_LT(crowded, alone);
}

TEST(Linear, KnownValue) {
  Linear fc(2, 2);
  fc.weights() = Tensor(Shape{2, 2}, std::vector<float>{1.0f, 2.0f,
                                                        3.0f, 4.0f});
  fc.bias() = Tensor(Shape{2}, std::vector<float>{0.5f, -0.5f});
  const Tensor in(Shape{1, 2}, std::vector<float>{1.0f, 1.0f});
  const Tensor out = fc.infer(in, scratch());
  EXPECT_FLOAT_EQ(out[0], 3.5f);
  EXPECT_FLOAT_EQ(out[1], 6.5f);
}

TEST(Softmax, NormalisesRows) {
  Softmax sm;
  const Tensor in(Shape{2, 3}, std::vector<float>{1.0f, 2.0f, 3.0f,
                                                  10.0f, 10.0f, 10.0f});
  const Tensor out = sm.infer(in, scratch());
  for (std::size_t s = 0; s < 2; ++s) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) sum += out[s * 3 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  EXPECT_NEAR(out[3], 1.0f / 3.0f, 1e-6);
  EXPECT_GT(out[2], out[1]);
}

TEST(Softmax, StableForLargeLogits) {
  Softmax sm;
  const Tensor in(Shape{1, 2}, std::vector<float>{1000.0f, 1000.0f});
  const Tensor out = sm.infer(in, scratch());
  EXPECT_NEAR(out[0], 0.5f, 1e-6);
}

TEST(Flatten, ReshapesAndRestores) {
  Flatten fl;
  LayerCache cache;  // backward needs the cached input shape
  Tensor in(Shape{2, 3, 4, 5});
  const Tensor out = fl.forward_train(in, cache);
  EXPECT_EQ(out.shape(), (Shape{2, 60}));
  const Tensor back = fl.backward(out, cache);
  EXPECT_EQ(back.shape(), in.shape());
}

TEST(Dropout, IdentityAtInference) {
  Dropout d(0.5f);
  Tensor in(Shape{100}, 1.0f);
  const Tensor out = d.infer(in, scratch());
  EXPECT_EQ(out, in);
}

TEST(Dropout, MasksAndRescalesInTraining) {
  Dropout d(0.5f);
  LayerCache cache;
  Tensor in(Shape{4, 4, 4, 4}, 1.0f);
  const Tensor out = d.forward_train(in, cache);
  int zeros = 0;
  for (std::size_t i = 0; i < out.count(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_GT(zeros, 64);
  EXPECT_LT(zeros, 192);
}

TEST(Dropout, CacheContextsDrawIndependentStreams) {
  // Micro-batch contexts with distinct rng streams must not replay each
  // other's masks; equal streams must (determinism).
  Dropout d(0.5f);
  Tensor in(Shape{8, 8}, 1.0f);
  FwdCache stream0a(0);
  FwdCache stream0b(0);
  FwdCache stream1(1);
  const Tensor a = d.forward_train(in, stream0a.slot(0));
  const Tensor b = d.forward_train(in, stream0b.slot(0));
  const Tensor c = d.forward_train(in, stream1.slot(0));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Dropout, RejectsInvalidP) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Sequential, InferUntilAndFromCompose) {
  auto net = make_minicnn({});
  Tensor image(Shape{1, 3, 32, 32});
  Rng rng(8);
  image.fill_normal(rng, 0.5f, 0.2f);

  const Tensor full = net->infer(image, scratch());
  const Tensor mid = net->infer_until(3, image, scratch());
  const Tensor rest = net->infer_from(3, mid, scratch());
  EXPECT_EQ(full, rest);
}

TEST(Sequential, LayerAccessValidation) {
  auto net = make_minicnn({});
  EXPECT_THROW((void)net->layer(100), std::out_of_range);
  EXPECT_NO_THROW((void)net->layer_as<Conv2d>(kMiniCnnConv1));
  EXPECT_THROW((void)net->layer_as<Linear>(kMiniCnnConv1), std::bad_cast);
}

TEST(AlexNet, GeometryEndToEnd) {
  auto net = make_alexnet({.num_classes = 43, .seed = 1,
                           .with_dropout = false});
  Tensor image(Shape{1, 3, 227, 227});
  Rng rng(9);
  image.fill_uniform(rng, 0.0f, 1.0f);
  const Tensor logits = net->infer(image, scratch());
  EXPECT_EQ(logits.shape(), (Shape{1, 43}));

  auto& conv1 = net->layer_as<Conv2d>(kAlexNetConv1);
  EXPECT_EQ(conv1.out_channels(), kAlexNetConv1Filters);
  EXPECT_EQ(conv1.kernel(), 11u);
  EXPECT_EQ(conv1.stride(), 4u);
}

TEST(MiniCnn, GeometryEndToEnd) {
  auto net = make_minicnn({.num_classes = 5, .conv1_filters = 16, .seed = 2});
  Tensor image(Shape{2, 3, 32, 32});
  Rng rng(10);
  image.fill_uniform(rng, 0.0f, 1.0f);
  const Tensor logits = net->infer(image, scratch());
  EXPECT_EQ(logits.shape(), (Shape{2, 5}));
}

TEST(Layer, BackwardRejectsEmptyCache) {
  ReLU relu;
  // A cache without recorded forward state must reject backward.
  LayerCache cache;
  EXPECT_THROW(relu.backward(Tensor(Shape{1}), cache),
               std::invalid_argument);
}

}  // namespace
