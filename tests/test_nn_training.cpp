// Training workflow: MiniCNN learns the synthetic signs; filter freezing
// semantics (Section III.B: pre-initialised Sobel filters kept constant
// vs drifting when trained freely vs re-set after every batch).
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/linear.hpp"
#include "nn/minicnn.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace hybridcnn::nn;
using hybridcnn::data::DatasetConfig;
using hybridcnn::data::Example;
using hybridcnn::data::kNumClasses;
using hybridcnn::data::make_dataset;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;

std::vector<Example> train_set() {
  return make_dataset(30, DatasetConfig{}, 101);
}

std::vector<Example> test_set() {
  return make_dataset(15, DatasetConfig{}, 202);
}

TrainConfig quick_config() {
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 15;
  cfg.learning_rate = 0.01f;
  cfg.momentum = 0.9f;
  return cfg;
}

TEST(Training, LossDecreasesAndTestAccuracyBeatsChance) {
  auto net = make_minicnn({.num_classes = kNumClasses, .conv1_filters = 8,
                           .seed = 7});
  const auto history = train(*net, train_set(), quick_config());
  ASSERT_GE(history.size(), 2u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);

  const Evaluation eval = evaluate(*net, test_set(), kNumClasses);
  EXPECT_GT(eval.accuracy, 0.6) << "chance level is 0.2";
}

TEST(Training, ConfusionMatrixRowsSumToExampleCounts) {
  auto net = make_minicnn({.num_classes = kNumClasses, .conv1_filters = 8,
                           .seed = 7});
  const auto tests = test_set();
  const Evaluation eval = evaluate(*net, tests, kNumClasses);
  std::uint64_t total = 0;
  for (const auto& row : eval.confusion) {
    for (const auto v : row) total += v;
  }
  EXPECT_EQ(total, tests.size());
  for (const auto& row : eval.confusion) {
    std::uint64_t row_sum = 0;
    for (const auto v : row) row_sum += v;
    EXPECT_EQ(row_sum, 15u);  // 15 per class in test_set()
  }
}

TEST(Training, HardFrozenSobelFilterNeverMoves) {
  // The paper found TensorFlow's freezing imperfect ("after every epoch or
  // batch, the filter values are minimally changed"); the library's hard
  // freeze must be exact.
  auto net = make_minicnn({.num_classes = kNumClasses, .conv1_filters = 8,
                           .seed = 9});
  auto& conv1 = net->layer_as<Conv2d>(kMiniCnnConv1);
  conv1.set_filter(0, sobel_filter(3, conv1.kernel()));
  conv1.set_filter_frozen(0, true);
  const Tensor before = conv1.filter(0);

  TrainConfig cfg = quick_config();
  cfg.epochs = 3;
  train(*net, train_set(), cfg);

  EXPECT_EQ(conv1.filter(0), before)
      << "hard-frozen filter must be bit-identical after training";
}

TEST(Training, UnfrozenSobelFilterDriftsUnderTraining) {
  // The paper's observation, reproduced: without freezing, the
  // pre-initialised filter undergoes (subtle) changes every batch.
  auto net = make_minicnn({.num_classes = kNumClasses, .conv1_filters = 8,
                           .seed = 9});
  auto& conv1 = net->layer_as<Conv2d>(kMiniCnnConv1);
  conv1.set_filter(0, sobel_filter(3, conv1.kernel()));
  const Tensor before = conv1.filter(0);

  TrainConfig cfg = quick_config();
  cfg.epochs = 2;
  train(*net, train_set(), cfg);

  const Tensor after = conv1.filter(0);
  EXPECT_GT(after.max_abs_diff(before), 0.0f)
      << "free filter must drift during training";
}

TEST(Training, ResetAfterEveryBatchRestoresFilter) {
  // The paper's workaround regime: train freely, re-set the filter after
  // every batch. At any observation point the filter equals the preset.
  auto net = make_minicnn({.num_classes = kNumClasses, .conv1_filters = 8,
                           .seed = 9});
  auto& conv1 = net->layer_as<Conv2d>(kMiniCnnConv1);
  const Tensor sobel = sobel_filter(3, conv1.kernel());
  conv1.set_filter(0, sobel);

  TrainConfig cfg = quick_config();
  cfg.epochs = 2;
  cfg.after_step = [&sobel](Sequential& n) {
    n.layer_as<Conv2d>(kMiniCnnConv1).set_filter(0, sobel);
  };
  train(*net, train_set(), cfg);
  EXPECT_EQ(conv1.filter(0), sobel);
}

TEST(Training, FreezingOneFilterDoesNotPreventLearning) {
  // Section III.B: "the accuracy of the model is not affected whether the
  // kernels are replaced after training is completed or set before
  // training has begun" — a Sobel-pinned filter must not break learning.
  auto frozen_net = make_minicnn({.num_classes = kNumClasses,
                                  .conv1_filters = 8, .seed = 21});
  auto& conv1 = frozen_net->layer_as<Conv2d>(kMiniCnnConv1);
  conv1.set_filter(0, sobel_filter(3, conv1.kernel()));
  conv1.set_filter_frozen(0, true);

  train(*frozen_net, train_set(), quick_config());
  const Evaluation eval = evaluate(*frozen_net, test_set(), kNumClasses);
  EXPECT_GT(eval.accuracy, 0.6);
}

TEST(Sgd, SingleStepMatchesManualUpdate) {
  Linear fc(2, 1);
  fc.weights() = Tensor(Shape{1, 2}, std::vector<float>{1.0f, -1.0f});
  fc.bias() = Tensor(Shape{1}, std::vector<float>{0.0f});

  const Tensor x(Shape{1, 2}, std::vector<float>{1.0f, 2.0f});
  LayerCache cache;
  fc.zero_grad();
  fc.forward_train(x, cache);
  const Tensor gout(Shape{1, 1}, std::vector<float>{1.0f});
  fc.backward(gout, cache);

  Sgd sgd(0.1f, 0.0f);
  sgd.step(fc);
  // dW = gout^T x = [1, 2]; W -= 0.1 * dW.
  EXPECT_FLOAT_EQ(fc.weights()[0], 0.9f);
  EXPECT_FLOAT_EQ(fc.weights()[1], -1.2f);
  EXPECT_FLOAT_EQ(fc.bias()[0], -0.1f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Linear fc(1, 1);
  fc.weights() = Tensor(Shape{1, 1}, std::vector<float>{0.0f});
  fc.bias() = Tensor(Shape{1}, std::vector<float>{0.0f});
  Sgd sgd(1.0f, 0.5f);

  const Tensor x(Shape{1, 1}, std::vector<float>{1.0f});
  const Tensor gout(Shape{1, 1}, std::vector<float>{1.0f});
  LayerCache cache;

  fc.zero_grad();
  fc.forward_train(x, cache);
  fc.backward(gout, cache);
  sgd.step(fc);
  EXPECT_FLOAT_EQ(fc.weights()[0], -1.0f);  // v = -1

  fc.zero_grad();
  fc.forward_train(x, cache);
  fc.backward(gout, cache);
  sgd.step(fc);
  // v = 0.5 * (-1) - 1 = -1.5 ; w = -1 - 1.5 = -2.5
  EXPECT_FLOAT_EQ(fc.weights()[0], -2.5f);
}

TEST(Sgd, Validation) {
  EXPECT_THROW(Sgd(0.0f), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1f, 1.0f), std::invalid_argument);
}

TEST(Training, Validation) {
  auto net = make_minicnn({});
  EXPECT_THROW(train(*net, {}, TrainConfig{}), std::invalid_argument);
  EXPECT_THROW(evaluate(*net, {}, 5), std::invalid_argument);
}

}  // namespace
