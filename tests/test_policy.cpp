// SafetyPolicy decision table and ExecutionReport merging.
#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "reliable/report.hpp"

namespace {

using hybridcnn::core::Decision;
using hybridcnn::core::decision_name;
using hybridcnn::core::SafetyPolicy;
using hybridcnn::reliable::ExecutionReport;

TEST(SafetyPolicy, DefaultHasNoCriticalClasses) {
  const SafetyPolicy p;
  EXPECT_FALSE(p.is_critical(0));
  EXPECT_EQ(p.decide(0, false, false), Decision::kNonCriticalPass);
}

TEST(SafetyPolicy, CriticalMembership) {
  const SafetyPolicy p({0, 7});
  EXPECT_TRUE(p.is_critical(0));
  EXPECT_TRUE(p.is_critical(7));
  EXPECT_FALSE(p.is_critical(3));
}

TEST(SafetyPolicy, DecisionTableExhaustive) {
  const SafetyPolicy p({0});
  // Non-critical: always passes regardless of evidence.
  EXPECT_EQ(p.decide(1, true, true), Decision::kNonCriticalPass);
  EXPECT_EQ(p.decide(1, false, true), Decision::kNonCriticalPass);
  EXPECT_EQ(p.decide(1, true, false), Decision::kNonCriticalPass);
  EXPECT_EQ(p.decide(1, false, false), Decision::kNonCriticalPass);
  // Critical + reliable execution: qualifier decides.
  EXPECT_EQ(p.decide(0, true, true), Decision::kQualifiedReliable);
  EXPECT_EQ(p.decide(0, false, true), Decision::kDemotedUnqualified);
  // Critical + failed reliable execution: fail-stop wins over qualifier.
  EXPECT_EQ(p.decide(0, true, false), Decision::kReliableExecutionFailed);
  EXPECT_EQ(p.decide(0, false, false), Decision::kReliableExecutionFailed);
}

TEST(SafetyPolicy, DecisionNames) {
  EXPECT_EQ(decision_name(Decision::kQualifiedReliable),
            "qualified_reliable");
  EXPECT_EQ(decision_name(Decision::kDemotedUnqualified),
            "demoted_unqualified");
  EXPECT_EQ(decision_name(Decision::kNonCriticalPass), "non_critical_pass");
  EXPECT_EQ(decision_name(Decision::kReliableExecutionFailed),
            "reliable_execution_failed");
}

TEST(ExecutionReport, MergeAccumulatesCounters) {
  ExecutionReport a;
  a.logical_ops = 10;
  a.detected_errors = 2;
  a.retries = 1;
  a.bucket_peak = 3;

  ExecutionReport b;
  b.logical_ops = 5;
  b.detected_errors = 1;
  b.bucket_peak = 2;
  b.ok = false;
  b.bucket_exhausted = true;
  b.failed_op_index = 12;

  a.merge(b);
  EXPECT_EQ(a.logical_ops, 15u);
  EXPECT_EQ(a.detected_errors, 3u);
  EXPECT_EQ(a.retries, 1u);
  EXPECT_EQ(a.bucket_peak, 3u);
  EXPECT_FALSE(a.ok);
  EXPECT_TRUE(a.bucket_exhausted);
  EXPECT_EQ(a.failed_op_index, 12);
}

TEST(ExecutionReport, MergeKeepsFirstFailureIndex) {
  ExecutionReport a;
  a.failed_op_index = 3;
  ExecutionReport b;
  b.failed_op_index = 9;
  a.merge(b);
  EXPECT_EQ(a.failed_op_index, 3);
}

TEST(ExecutionReport, SummaryMentionsFailure) {
  ExecutionReport r;
  r.stage = "conv1";
  r.scheme = "dmr";
  r.ok = false;
  r.bucket_exhausted = true;
  r.failed_op_index = 42;
  const std::string s = r.summary();
  EXPECT_NE(s.find("FAILED"), std::string::npos);
  EXPECT_NE(s.find("bucket exhausted"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

}  // namespace
