// Qualifier bifurcation sources: the paper's single x/y/x dependable
// filter vs the (x, y) pair extension vs full resolution.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_network.hpp"
#include "data/renderer.hpp"
#include "nn/conv2d.hpp"
#include "nn/filters.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/relu.hpp"

namespace {

using namespace hybridcnn;
using core::FaultSeedStream;
using core::HybridConfig;
using core::HybridNetwork;
using core::QualifierSource;

core::HybridClassification classify_once(const HybridNetwork& net,
                                         const tensor::Tensor& img) {
  FaultSeedStream seeds = net.seed_stream();
  return net.classify(img, seeds);
}

std::unique_ptr<nn::Sequential> make_net(std::size_t image,
                                         std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 7, 2, 0);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Flatten>();
  const std::size_t fm = (image - 7) / 2 + 1;
  net->emplace<nn::Linear>(8 * fm * fm, 5);
  nn::init_network(*net, seed);
  return net;
}

TEST(SobelAxisFilter, AllChannelsShareOneAxis) {
  const auto f = nn::sobel_axis_filter(3, 5, nn::SobelAxis::kY,
                                       /*normalized=*/false);
  const auto ky = nn::sobel_kernel(5, nn::SobelAxis::kY, false);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 25; ++i) {
      EXPECT_FLOAT_EQ(f[c * 25 + i], ky[i]);
    }
  }
}

TEST(SobelAxisFilter, Validation) {
  EXPECT_THROW(nn::sobel_axis_filter(0, 3, nn::SobelAxis::kX),
               std::invalid_argument);
}

TEST(QualifierSources, PairSourceInstallsTwoFrozenFilters) {
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMapPair;
  cfg.dependable_filter = 3;
  HybridNetwork hybrid(make_net(128), 0, cfg);
  auto& conv1 = hybrid.cnn().layer_as<nn::Conv2d>(0);
  EXPECT_TRUE(conv1.filter_frozen(3));
  EXPECT_TRUE(conv1.filter_frozen(4));
  EXPECT_EQ(conv1.filter(3),
            nn::sobel_axis_filter(3, 7, nn::SobelAxis::kX));
  EXPECT_EQ(conv1.filter(4),
            nn::sobel_axis_filter(3, 7, nn::SobelAxis::kY));
}

TEST(QualifierSources, PairSourceValidatesFilterRange) {
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMapPair;
  cfg.dependable_filter = 7;  // pair needs 7 and 8, conv has 8 filters
  EXPECT_THROW(HybridNetwork(make_net(128), 0, cfg),
               std::invalid_argument);
}

TEST(QualifierSources, PairSourceQualifiesStopOnBifurcatedPath) {
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMapPair;
  HybridNetwork hybrid(make_net(160), 0, cfg);
  const auto r = classify_once(hybrid, data::render_stop_sign(160, 5.0));
  EXPECT_TRUE(r.qualifier.reliable);
  EXPECT_TRUE(r.qualifier.match)
      << "dist=" << r.qualifier.shape.distance
      << " corners=" << r.qualifier.shape.corners;
}

TEST(QualifierSources, PairSourceRejectsImpostorOnBifurcatedPath) {
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMapPair;
  HybridNetwork hybrid(make_net(160), 0, cfg);
  data::RenderParams p;
  p.cls = data::SignClass::kParking;
  p.size = 160;
  p.scale = 0.8;
  const auto r = classify_once(hybrid, data::render_sign(p));
  EXPECT_FALSE(r.qualifier.match);
}

TEST(QualifierSources, SingleMixedFilterIsConservativeNotUnsafe) {
  // The paper's x/y/x single filter often fails to confirm the octagon
  // on the bifurcated path (directional nulls) — but failure must always
  // land on the safe side: no impostor is ever accepted.
  HybridConfig cfg;
  cfg.qualifier.source = QualifierSource::kDependableFeatureMap;
  HybridNetwork hybrid(make_net(128), 0, cfg);
  for (const auto cls : {data::SignClass::kSpeedLimit,
                         data::SignClass::kYield,
                         data::SignClass::kParking}) {
    data::RenderParams p;
    p.cls = cls;
    p.size = 128;
    p.scale = 0.8;
    EXPECT_FALSE(classify_once(hybrid, data::render_sign(p)).qualifier.match)
        << data::class_name(cls);
  }
}

TEST(QualifierSources, MorphologyDoesNotBreakFullResolution) {
  // Regression guard for the dilate/erode pipeline: the full-resolution
  // source must keep qualifying across sizes (incl. small inputs).
  for (const std::size_t size : {64u, 96u, 227u}) {
    HybridConfig cfg;
    HybridNetwork hybrid(make_net(size, 5), 0, cfg);
    const auto r = classify_once(hybrid,
                                 data::render_stop_sign(size, 4.0));
    EXPECT_TRUE(r.qualifier.match) << "size " << size;
  }
}

}  // namespace
