// Algorithm 3 (reliable convolution): correctness, fault recovery, abort
// semantics and the reliability guarantee against a golden reference.
#include <gtest/gtest.h>

#include <memory>

#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::faultsim::FaultConfig;
using hybridcnn::faultsim::FaultInjector;
using hybridcnn::faultsim::FaultKind;
using hybridcnn::reliable::ConvSpec;
using hybridcnn::reliable::LayerDmrConv2d;
using hybridcnn::reliable::make_executor;
using hybridcnn::reliable::ReliabilityPolicy;
using hybridcnn::reliable::ReliableConv2d;
using hybridcnn::reliable::SimplexExecutor;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

ReliableConv2d make_conv(std::size_t out_c, std::size_t in_c, std::size_t k,
                         ConvSpec spec, ReliabilityPolicy policy = {},
                         std::uint64_t seed = 11) {
  Rng rng(seed);
  Tensor weights(Shape{out_c, in_c, k, k});
  weights.fill_normal(rng, 0.0f, 0.5f);
  Tensor bias(Shape{out_c});
  bias.fill_normal(rng, 0.0f, 0.1f);
  return {std::move(weights), std::move(bias), spec, policy};
}

Tensor make_input(std::size_t c, std::size_t h, std::size_t w,
                  std::uint64_t seed = 23) {
  Rng rng(seed);
  Tensor input(Shape{c, h, w});
  input.fill_normal(rng, 0.0f, 1.0f);
  return input;
}

// ------------------------------------------------------------ validation

TEST(ReliableConv2d, RejectsNonOihwWeights) {
  EXPECT_THROW(ReliableConv2d(Tensor(Shape{4, 3, 3}), Tensor(Shape{4}),
                              ConvSpec{}),
               std::invalid_argument);
}

TEST(ReliableConv2d, RejectsBiasMismatch) {
  EXPECT_THROW(ReliableConv2d(Tensor(Shape{4, 1, 3, 3}), Tensor(Shape{3}),
                              ConvSpec{}),
               std::invalid_argument);
}

TEST(ReliableConv2d, RejectsZeroStride) {
  EXPECT_THROW(ReliableConv2d(Tensor(Shape{4, 1, 3, 3}), Tensor(Shape{4}),
                              ConvSpec{0, 0}),
               std::invalid_argument);
}

TEST(ReliableConv2d, RejectsChannelMismatch) {
  const ReliableConv2d conv = make_conv(2, 3, 3, ConvSpec{1, 0});
  EXPECT_THROW(static_cast<void>(conv.output_shape(Shape{2, 8, 8})),
               std::invalid_argument);
}

TEST(ReliableConv2d, OutputShapeStrideAndPad) {
  const ReliableConv2d conv = make_conv(96, 3, 11, ConvSpec{4, 0});
  const auto out = conv.output_shape(Shape{3, 227, 227});
  EXPECT_EQ(out, (Shape{96, 55, 55}));  // AlexNet conv1 geometry
}

TEST(ReliableConv2d, MacCountMatchesAlexNetConv1) {
  const ReliableConv2d conv = make_conv(96, 3, 11, ConvSpec{4, 0});
  // 96 * 55 * 55 * 3 * 11 * 11 (no padding -> every tap lands in-bounds)
  EXPECT_EQ(conv.mac_count(Shape{3, 227, 227}), 96ull * 55 * 55 * 3 * 121);
}

TEST(ReliableConv2d, MacCountExcludesPaddedTaps) {
  const ReliableConv2d conv = make_conv(1, 1, 3, ConvSpec{1, 1});
  // 3x3 input, pad 1: centre tap always lands, corners lose taps.
  // Full grid would be 9 * 9 = 81; padded border removes 81 - 49 = 32.
  EXPECT_EQ(conv.mac_count(Shape{1, 3, 3}), 49u);
}

// ------------------------------------------------- fault-free execution

class FaultFreeSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultFreeSchemes, BitIdenticalToReference) {
  const ReliableConv2d conv = make_conv(4, 3, 3, ConvSpec{2, 1});
  const Tensor input = make_input(3, 13, 13);
  const auto exec = make_executor(GetParam(), nullptr);
  const auto result = conv.forward(input, *exec);

  ASSERT_TRUE(result.report.ok);
  EXPECT_EQ(result.report.detected_errors, 0u);
  EXPECT_EQ(result.report.retries, 0u);
  const Tensor golden = conv.reference_forward(input);
  EXPECT_EQ(result.output, golden)
      << "fault-free qualified execution must be bit-identical";
}

TEST_P(FaultFreeSchemes, ReportCountsLogicalOps) {
  const ReliableConv2d conv = make_conv(2, 2, 3, ConvSpec{1, 0});
  const Tensor input = make_input(2, 6, 6);
  const auto exec = make_executor(GetParam(), nullptr);
  const auto result = conv.forward(input, *exec);
  // One multiply + one accumulate per MAC.
  EXPECT_EQ(result.report.logical_ops, 2 * conv.mac_count(input.shape()));
  EXPECT_EQ(result.report.commits, result.report.logical_ops);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FaultFreeSchemes,
                         ::testing::Values("simplex", "dmr", "tmr"));

// ------------------------------------------------------ fault recovery

TEST(ReliableConv2d, DmrCorrectsTransientFaults) {
  // Moderate transient rate: DMR detects each corrupted execution, the
  // kernel rolls back one operation and retries; the final output must be
  // bit-identical to the golden run — the paper's reliability guarantee.
  // Rate chosen so several faults activate but the probability of two
  // successive failing executions of one op (which would correctly
  // fail-stop) is negligible for this op count.
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 2e-4;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 99);
  const auto exec = make_executor("dmr", inj);

  const ReliableConv2d conv = make_conv(4, 3, 5, ConvSpec{1, 2});
  const Tensor input = make_input(3, 16, 16);
  const auto result = conv.forward(input, *exec);

  ASSERT_TRUE(result.report.ok) << result.report.summary();
  ASSERT_GT(result.report.detected_errors, 0u)
      << "test vacuous: no faults activated";
  EXPECT_EQ(result.report.corrected_errors, result.report.detected_errors);
  EXPECT_EQ(result.output, conv.reference_forward(input));
}

TEST(ReliableConv2d, TmrMasksTransientFaultsWithoutRetries) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 2e-3;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 1234);
  const auto exec = make_executor("tmr", inj);

  const ReliableConv2d conv = make_conv(4, 3, 5, ConvSpec{1, 2});
  const Tensor input = make_input(3, 16, 16);
  const auto result = conv.forward(input, *exec);

  ASSERT_TRUE(result.report.ok);
  ASSERT_GT(inj->stats().faults, 0u) << "test vacuous: no faults activated";
  // Voting masks single faults in place: most faults need no retry.
  EXPECT_EQ(result.output, conv.reference_forward(input));
  EXPECT_LT(result.report.retries, inj->stats().faults);
}

TEST(ReliableConv2d, SimplexSuffersSilentCorruption) {
  // The unprotected baseline: faults flow straight into the output.
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1e-3;
  cfg.bit = 30;  // high exponent bit: large corruption
  auto inj = std::make_shared<FaultInjector>(cfg, 5);
  const auto exec = make_executor("simplex", inj);

  const ReliableConv2d conv = make_conv(4, 3, 5, ConvSpec{1, 2});
  const Tensor input = make_input(3, 16, 16);
  const auto result = conv.forward(input, *exec);

  ASSERT_TRUE(result.report.ok) << "simplex never detects anything";
  ASSERT_GT(inj->stats().faults, 0u);
  EXPECT_NE(result.output, conv.reference_forward(input))
      << "silent corruption expected for the unprotected baseline";
}

// ------------------------------------------------------- abort semantics

TEST(ReliableConv2d, PermanentFaultExhaustsBucketAndAborts) {
  // Every PE permanently faulty: each DMR comparison disagrees (the two
  // executions land on different PEs with random-bit corruption), retries
  // cannot succeed, and the leaky bucket must trip.
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 1.0;
  cfg.num_pes = 8;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 17);
  const auto exec = make_executor("dmr", inj);

  const ReliableConv2d conv = make_conv(2, 1, 3, ConvSpec{1, 0});
  const Tensor input = make_input(1, 8, 8);
  const auto result = conv.forward(input, *exec);

  EXPECT_FALSE(result.report.ok);
  EXPECT_TRUE(result.report.bucket_exhausted);
  EXPECT_GE(result.report.failed_op_index, 0);
}

TEST(ReliableConv2d, AbortReportsFailedOpIndexEarly) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 1.0;
  cfg.num_pes = 4;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 3);
  const auto exec = make_executor("dmr", inj);

  const ReliableConv2d conv = make_conv(2, 1, 3, ConvSpec{1, 0});
  const Tensor input = make_input(1, 8, 8);
  const auto result = conv.forward(input, *exec);
  ASSERT_FALSE(result.report.ok);
  // The very first operation must already fail persistently.
  EXPECT_EQ(result.report.failed_op_index, 0);
}

TEST(ReliableConv2d, RetryCapBoundsWorstCaseExecutions) {
  // Huge bucket; the per-op retry cap must still terminate execution.
  ReliabilityPolicy policy;
  policy.bucket_factor = 1;
  policy.bucket_ceiling = 1000000;
  policy.max_retries_per_op = 4;

  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 1.0;
  cfg.num_pes = 8;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 29);
  const auto exec = make_executor("dmr", inj);

  const ReliableConv2d conv =
      make_conv(1, 1, 3, ConvSpec{1, 0}, policy);
  const Tensor input = make_input(1, 5, 5);
  const auto result = conv.forward(input, *exec);
  EXPECT_FALSE(result.report.ok);
  EXPECT_FALSE(result.report.bucket_exhausted);
  EXPECT_LE(result.report.retries, 4u);
}

// --------------------------------------------- reliability guarantee sweep

struct GuaranteeParam {
  const char* scheme;
  double fault_rate;
};

class ReliabilityGuarantee : public ::testing::TestWithParam<GuaranteeParam> {
};

TEST_P(ReliabilityGuarantee, NoSilentCorruptionEver) {
  // The central property: with DMR or TMR plus operation rollback, a run
  // either completes with the golden output or reports failure. The
  // residual risk — redundant executions corrupted identically, which no
  // comparison can see — scales with rate^2/32 per op, so the property is
  // exercised in the rate regime where that term is negligible for this
  // op count; the ABL-FAULT bench measures the residual beyond it.
  const auto& p = GetParam();
  const ReliableConv2d conv = make_conv(3, 2, 3, ConvSpec{1, 1});
  const Tensor input = make_input(2, 10, 10);
  const Tensor golden = conv.reference_forward(input);

  int completed = 0;
  int aborted = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FaultConfig cfg;
    cfg.kind = FaultKind::kTransient;
    cfg.probability = p.fault_rate;
    cfg.bit = -1;
    auto inj = std::make_shared<FaultInjector>(cfg, seed);
    const auto exec = make_executor(p.scheme, inj);
    const auto result = conv.forward(input, *exec);
    if (result.report.ok) {
      ++completed;
      EXPECT_EQ(result.output, golden)
          << p.scheme << " completed with non-golden output at rate "
          << p.fault_rate << " seed " << seed;
    } else {
      ++aborted;
    }
  }
  EXPECT_EQ(completed + aborted, 20);
}

INSTANTIATE_TEST_SUITE_P(
    RateGrid, ReliabilityGuarantee,
    ::testing::Values(GuaranteeParam{"dmr", 1e-5}, GuaranteeParam{"dmr", 1e-4},
                      GuaranteeParam{"dmr", 5e-4}, GuaranteeParam{"dmr", 2e-3},
                      GuaranteeParam{"tmr", 1e-5}, GuaranteeParam{"tmr", 1e-4},
                      GuaranteeParam{"tmr", 5e-4},
                      GuaranteeParam{"tmr", 2e-3}));

// ------------------------------------------------------------- layer DMR

TEST(LayerDmrConv2d, FaultFreeMatchesReference) {
  const ReliableConv2d ref = make_conv(3, 2, 3, ConvSpec{1, 1});
  const LayerDmrConv2d layer(ref.weights(), ref.bias(), ref.spec());
  const Tensor input = make_input(2, 9, 9);
  SimplexExecutor exec(nullptr);
  const auto result = layer.forward(input, exec);
  ASSERT_TRUE(result.report.ok);
  EXPECT_EQ(result.output, ref.reference_forward(input));
}

TEST(LayerDmrConv2d, DetectsAndRetriesWholeLayer) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1e-4;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 77);

  const ReliableConv2d ref = make_conv(3, 2, 3, ConvSpec{1, 1});
  hybridcnn::reliable::ReliabilityPolicy policy;
  policy.max_retries_per_op = 64;  // layer attempts
  policy.bucket_ceiling = 200;
  const LayerDmrConv2d layer(ref.weights(), ref.bias(), ref.spec(), policy);
  const Tensor input = make_input(2, 9, 9);
  SimplexExecutor exec(inj);
  const auto result = layer.forward(input, exec);
  if (result.report.ok) {
    EXPECT_EQ(result.output, ref.reference_forward(input));
    EXPECT_GT(result.report.detected_errors + result.report.commits, 0u);
  }
}

}  // namespace
