// ReliableLinear: Algorithm 3 semantics extended to dense layers.
#include <gtest/gtest.h>

#include <memory>

#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_linear.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::faultsim::FaultConfig;
using hybridcnn::faultsim::FaultInjector;
using hybridcnn::faultsim::FaultKind;
using hybridcnn::reliable::make_executor;
using hybridcnn::reliable::ReliableLinear;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

ReliableLinear make_layer(std::size_t out_n, std::size_t in_n,
                          std::uint64_t seed = 31) {
  Rng rng(seed);
  Tensor weights(Shape{out_n, in_n});
  weights.fill_normal(rng, 0.0f, 0.3f);
  Tensor bias(Shape{out_n});
  bias.fill_normal(rng, 0.0f, 0.1f);
  return {std::move(weights), std::move(bias)};
}

TEST(ReliableLinear, RejectsBadShapes) {
  EXPECT_THROW(ReliableLinear(Tensor(Shape{4}), Tensor(Shape{4})),
               std::invalid_argument);
  EXPECT_THROW(ReliableLinear(Tensor(Shape{4, 3}), Tensor(Shape{3})),
               std::invalid_argument);
}

TEST(ReliableLinear, RejectsBadInput) {
  const ReliableLinear layer = make_layer(4, 8);
  const auto exec = make_executor("dmr", nullptr);
  EXPECT_THROW(layer.forward(Tensor(Shape{7}), *exec),
               std::invalid_argument);
  EXPECT_THROW(layer.reference_forward(Tensor(Shape{4, 2})),
               std::invalid_argument);
}

class LinearSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(LinearSchemes, FaultFreeBitIdenticalToReference) {
  const ReliableLinear layer = make_layer(6, 20);
  Rng rng(5);
  Tensor input(Shape{20});
  input.fill_normal(rng, 0.0f, 1.0f);

  const auto exec = make_executor(GetParam(), nullptr);
  const auto result = layer.forward(input, *exec);
  ASSERT_TRUE(result.report.ok);
  EXPECT_EQ(result.output, layer.reference_forward(input));
  EXPECT_EQ(result.report.logical_ops, 2u * 6u * 20u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, LinearSchemes,
                         ::testing::Values("simplex", "dmr", "tmr"));

TEST(ReliableLinear, DmrCorrectsTransientFaults) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 1e-3;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 41);
  const auto exec = make_executor("dmr", inj);

  const ReliableLinear layer = make_layer(16, 64);
  Rng rng(6);
  Tensor input(Shape{64});
  input.fill_normal(rng, 0.0f, 1.0f);

  const auto result = layer.forward(input, *exec);
  ASSERT_TRUE(result.report.ok) << result.report.summary();
  ASSERT_GT(result.report.detected_errors, 0u) << "test vacuous";
  EXPECT_EQ(result.output, layer.reference_forward(input));
}

TEST(ReliableLinear, PermanentFaultAborts) {
  FaultConfig cfg;
  cfg.kind = FaultKind::kPermanent;
  cfg.probability = 1.0;
  cfg.num_pes = 4;
  cfg.bit = -1;
  auto inj = std::make_shared<FaultInjector>(cfg, 4);
  const auto exec = make_executor("dmr", inj);

  const ReliableLinear layer = make_layer(4, 8);
  const Tensor input(Shape{8}, 1.0f);
  const auto result = layer.forward(input, *exec);
  EXPECT_FALSE(result.report.ok);
  EXPECT_TRUE(result.report.bucket_exhausted);
}

TEST(ReliableLinear, ReportSchemeAndStage) {
  const ReliableLinear layer = make_layer(2, 2);
  const auto exec = make_executor("tmr", nullptr);
  const auto result = layer.forward(Tensor(Shape{2}, 1.0f), *exec);
  EXPECT_EQ(result.report.stage, "reliable_linear");
  EXPECT_EQ(result.report.scheme, "tmr");
}

}  // namespace
