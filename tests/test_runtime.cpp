// Runtime layer semantics: thread pool scheduling, workspace arena
// reuse/reset, and the compute-context bundle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"
#include "runtime/compute_context.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"

namespace {

using hybridcnn::runtime::BoundedQueue;
using hybridcnn::runtime::ComputeContext;
using hybridcnn::runtime::ThreadPool;
using hybridcnn::runtime::Workspace;

TEST(ThreadPool, SingleThreadHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.slot_count(), 1u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(0, kCount, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  pool.parallel_for_chunks(
      0, 777, 10, [&](std::size_t b, std::size_t e, std::size_t slot) {
        EXPECT_LT(slot, pool.slot_count());
        EXPECT_LT(b, e);
        for (std::size_t i = b; i < e; ++i) hits[i]++;
      });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // Pool stays usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInlineAndCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::size_t o) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    pool.parallel_for(0, kInner,
                      [&](std::size_t i) { hits[o * kInner + i]++; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(Workspace, ReusesCapacityAcrossScopes) {
  Workspace ws;
  float* first = nullptr;
  {
    Workspace::Scope scope(ws);
    first = ws.alloc(1024);
    EXPECT_EQ(ws.in_use(), 1024u);
  }
  EXPECT_EQ(ws.in_use(), 0u);
  const std::size_t cap = ws.capacity();
  EXPECT_GE(cap, 1024u);
  {
    Workspace::Scope scope(ws);
    // Same request after release lands on the same memory, no growth.
    EXPECT_EQ(ws.alloc(1024), first);
  }
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(Workspace, PointersSurviveLaterBlockGrowth) {
  Workspace ws;
  Workspace::Scope scope(ws);
  float* small = ws.alloc(64);
  small[0] = 42.0f;
  // Force allocation of additional blocks well past the first.
  float* big = ws.alloc(1u << 20);
  big[0] = 1.0f;
  EXPECT_EQ(small[0], 42.0f);  // first block never reallocated
  EXPECT_GE(ws.in_use(), (1u << 20) + 64u);
}

TEST(Workspace, NestedScopesRestoreWatermarks) {
  Workspace ws;
  Workspace::Scope outer(ws);
  (void)ws.alloc(100);
  const std::size_t outer_mark = ws.in_use();
  {
    Workspace::Scope inner(ws);
    (void)ws.alloc(5000);
    EXPECT_GT(ws.in_use(), outer_mark);
  }
  EXPECT_EQ(ws.in_use(), outer_mark);
}

TEST(Workspace, ResetKeepsCapacityReleaseMemoryDrops) {
  Workspace ws;
  (void)ws.alloc(4096);
  ws.reset();
  EXPECT_EQ(ws.in_use(), 0u);
  EXPECT_GE(ws.capacity(), 4096u);
  ws.release_memory();
  EXPECT_EQ(ws.capacity(), 0u);
}

TEST(ComputeContext, GlobalIsStableAndResizable) {
  ComputeContext& a = ComputeContext::global();
  ComputeContext::set_global_threads(3);
  ComputeContext& b = ComputeContext::global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.slot_count(), 3u);
  EXPECT_EQ(b.pool().slot_count(), 3u);
  ComputeContext::set_global_threads(1);
  EXPECT_EQ(b.slot_count(), 1u);
}

TEST(ComputeContext, IndependentThreadsGetDistinctArenas) {
  // Two plain std::threads outside any pool region must not share a bump
  // allocator (the seed kernels' function-local scratch was thread-safe;
  // the arena replacement has to be too).
  ComputeContext& ctx = ComputeContext::global();
  Workspace* seen[2] = {nullptr, nullptr};
  std::thread a([&] { seen[0] = &ctx.workspace(); });
  std::thread b([&] { seen[1] = &ctx.workspace(); });
  a.join();
  b.join();
  EXPECT_NE(seen[0], nullptr);
  EXPECT_NE(seen[0], seen[1]);
}

TEST(BoundedQueue, FifoOrderAndBatchedPop) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(q.pop_batch(out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushRefusesWhenFullWithoutRunningTheFactory) {
  BoundedQueue<int> q(2);
  bool ran = false;
  EXPECT_TRUE(q.try_push_with([&] { ran = true; return 1; }));
  EXPECT_TRUE(q.try_push_with([&] { return 2; }));
  ran = false;
  EXPECT_FALSE(q.try_push_with([&] { ran = true; return 3; }));
  EXPECT_FALSE(ran) << "a refused admission must not draw a seed";

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 1), 1u);
  EXPECT_TRUE(q.try_push_with([&] { return 3; }));
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed.store(true);
  });

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 1), 1u);
  EXPECT_EQ(q.pop_batch(out, 1), 1u);  // waits for the producer
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueue, CloseDrainsTailThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();

  EXPECT_FALSE(q.push(3)) << "admissions stop at close";
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8), 2u) << "the admitted tail stays poppable";
  EXPECT_EQ(q.pop_batch(out, 8), 0u) << "0 = closed and drained";
}

TEST(BoundedQueue, ConcurrentProducersDeliverEverythingExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 200;
  BoundedQueue<std::size_t> q(3);  // tiny: force blocking

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(t * kPerProducer + i));
      }
    });
  }

  std::vector<std::size_t> got;
  std::vector<std::size_t> batch;
  while (got.size() < kProducers * kPerProducer) {
    batch.clear();
    ASSERT_GT(q.pop_batch(batch, 7), 0u);
    got.insert(got.end(), batch.begin(), batch.end());
  }
  for (auto& p : producers) p.join();

  std::sort(got.begin(), got.end());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
}

TEST(ComputeContext, PerSlotWorkspacesAreDistinct) {
  ComputeContext ctx(4);
  ASSERT_EQ(ctx.slot_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(&ctx.workspace(i), &ctx.workspace(j));
    }
  }
  // Outside any parallel region the caller gets its thread-local arena,
  // not a slot arena — see IndependentThreadsGetDistinctArenas.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(&ctx.workspace(), &ctx.workspace(i));
  }
}

// ------------------------------------- deterministic exception rethrow

TEST(ThreadPool, RethrowsTheLowestIndexException) {
  // When several indices throw, the rethrown exception must be exactly
  // the one a serial loop would hit first — the lowest throwing index —
  // at every thread count. (Chunks are claimed out of order under
  // contention, so without the lowest-chunk rule the surfaced error
  // would be scheduling-dependent.)
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(0, 1000, [](std::size_t i) {
        if (i % 97 == 13) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 13") << threads << " threads";
    }
  }
}

TEST(ThreadPool, RethrowsTheLowestChunkException) {
  // Every chunk throws; whatever the claim order under contention, the
  // exception that surfaces must be the first chunk's.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for_chunks(
          0, 900, 10, [](std::size_t b, std::size_t, std::size_t) {
            throw std::runtime_error("chunk " + std::to_string(b));
          });
      FAIL() << "expected a throw at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 0") << threads << " threads";
    }
  }
}

}  // namespace
