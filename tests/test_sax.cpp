// SAX substrate: z-normalisation, PAA, breakpoints, words, MINDIST and
// its lower-bounding guarantee (the property the qualifier relies on).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sax/breakpoints.hpp"
#include "sax/mindist.hpp"
#include "sax/paa.hpp"
#include "sax/sax_word.hpp"
#include "sax/znorm.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybridcnn::sax;
using hybridcnn::util::Rng;

// ----------------------------------------------------------------- znorm

TEST(Znorm, MeanZeroStdOne) {
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto z = znormalize(s);
  const auto st = series_stats(z);
  EXPECT_NEAR(st.mean, 0.0, 1e-12);
  EXPECT_NEAR(st.stddev, 1.0, 1e-12);
}

TEST(Znorm, ConstantSeriesBecomesZero) {
  const std::vector<double> s{3.0, 3.0, 3.0};
  const auto z = znormalize(s);
  for (const double v : z) EXPECT_EQ(v, 0.0);
}

TEST(Znorm, EmptySeries) {
  EXPECT_TRUE(znormalize({}).empty());
}

TEST(Znorm, StatsOfKnownSeries) {
  const auto st = series_stats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(st.mean, 5.0, 1e-12);
  EXPECT_NEAR(st.stddev, 2.0, 1e-12);
}

// ------------------------------------------------------------------- paa

TEST(Paa, ExactDivision) {
  const std::vector<double> s{1.0, 3.0, 5.0, 7.0};
  const auto p = paa(s, 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 2.0, 1e-12);
  EXPECT_NEAR(p[1], 6.0, 1e-12);
}

TEST(Paa, IdentityWhenSegmentsEqualLength) {
  const std::vector<double> s{1.0, -2.0, 4.0};
  const auto p = paa(s, 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p[i], s[i], 1e-12);
}

TEST(Paa, FractionalBoundariesPreserveMean) {
  // segments that do not divide n: total mass must be preserved.
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto p = paa(s, 2);
  ASSERT_EQ(p.size(), 2u);
  const double series_mean = 3.0;
  EXPECT_NEAR((p[0] + p[1]) / 2.0, series_mean, 1e-12);
  EXPECT_LT(p[0], p[1]);
}

TEST(Paa, SingleSegmentIsMean) {
  const std::vector<double> s{2.0, 4.0, 9.0};
  const auto p = paa(s, 1);
  EXPECT_NEAR(p[0], 5.0, 1e-12);
}

TEST(Paa, Validation) {
  EXPECT_THROW(paa({}, 1), std::invalid_argument);
  EXPECT_THROW(paa({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(paa({1.0}, 2), std::invalid_argument);
}

// ----------------------------------------------------------- breakpoints

TEST(Breakpoints, MatchesPublishedTable) {
  // Lin et al. 2003, Table 3.
  const auto b3 = gaussian_breakpoints(3);
  ASSERT_EQ(b3.size(), 2u);
  EXPECT_NEAR(b3[0], -0.43, 0.005);
  EXPECT_NEAR(b3[1], 0.43, 0.005);

  const auto b4 = gaussian_breakpoints(4);
  EXPECT_NEAR(b4[0], -0.67, 0.005);
  EXPECT_NEAR(b4[1], 0.0, 1e-9);
  EXPECT_NEAR(b4[2], 0.67, 0.005);

  const auto b8 = gaussian_breakpoints(8);
  EXPECT_NEAR(b8[0], -1.15, 0.005);
  EXPECT_NEAR(b8[3], 0.0, 1e-9);
  EXPECT_NEAR(b8[6], 1.15, 0.005);
}

TEST(Breakpoints, Ascending) {
  for (std::size_t a = 2; a <= 26; ++a) {
    const auto bp = gaussian_breakpoints(a);
    for (std::size_t i = 1; i < bp.size(); ++i) {
      EXPECT_LT(bp[i - 1], bp[i]);
    }
  }
}

TEST(Breakpoints, Validation) {
  EXPECT_THROW(gaussian_breakpoints(1), std::invalid_argument);
  EXPECT_THROW(gaussian_breakpoints(27), std::invalid_argument);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746), 1.0, 1e-5);
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(InverseNormalCdf, RoundTripsThroughCdf) {
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double x = inverse_normal_cdf(p);
    const double back = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(back, p, 1e-8);
  }
}

// ------------------------------------------------------------------ word

TEST(SaxWord, Symbolize) {
  const auto bp = gaussian_breakpoints(4);  // {-0.67, 0, 0.67}
  EXPECT_EQ(symbolize(-2.0, bp), 'a');
  EXPECT_EQ(symbolize(-0.3, bp), 'b');
  EXPECT_EQ(symbolize(0.3, bp), 'c');
  EXPECT_EQ(symbolize(2.0, bp), 'd');
}

TEST(SaxWord, RampProducesSortedWord) {
  std::vector<double> ramp(64);
  for (std::size_t i = 0; i < 64; ++i) ramp[i] = static_cast<double>(i);
  const std::string w = sax_word(ramp, {8, 4});
  EXPECT_EQ(w.size(), 8u);
  EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
  EXPECT_EQ(w.front(), 'a');
  EXPECT_EQ(w.back(), 'd');
}

TEST(SaxWord, ConstantSeriesIsMidLetter) {
  const std::vector<double> flat(32, 5.0);
  const std::string w = sax_word(flat, {4, 4});
  // znorm of constant -> all zeros -> letter 'c' (first letter >= 0).
  EXPECT_EQ(w, "cccc");
}

TEST(SaxWord, ShiftAndScaleInvariance) {
  Rng rng(3);
  std::vector<double> s(128);
  for (auto& v : s) v = rng.normal(0.0, 1.0);
  std::vector<double> t(128);
  for (std::size_t i = 0; i < 128; ++i) t[i] = 100.0 + 7.5 * s[i];
  const SaxConfig cfg{16, 8};
  EXPECT_EQ(sax_word(s, cfg), sax_word(t, cfg))
      << "z-normalisation must make SAX shift/scale invariant";
}

// --------------------------------------------------------------- mindist

TEST(Mindist, AdjacentSymbolsAreZeroDistance) {
  const SymbolDistanceTable t(8);
  EXPECT_EQ(t.dist('a', 'a'), 0.0);
  EXPECT_EQ(t.dist('a', 'b'), 0.0);
  EXPECT_EQ(t.dist('d', 'c'), 0.0);
  EXPECT_GT(t.dist('a', 'c'), 0.0);
}

TEST(Mindist, SymmetricTable) {
  const SymbolDistanceTable t(6);
  for (char a = 'a'; a < 'a' + 6; ++a) {
    for (char b = 'a'; b < 'a' + 6; ++b) {
      EXPECT_EQ(t.dist(a, b), t.dist(b, a));
    }
  }
}

TEST(Mindist, RejectsOutOfAlphabetSymbols) {
  const SymbolDistanceTable t(4);
  EXPECT_THROW(static_cast<void>(t.dist('a', 'z')), std::invalid_argument);
}

TEST(Mindist, IdenticalWordsZero) {
  const SymbolDistanceTable t(8);
  EXPECT_EQ(mindist("abcd", "abcd", 64, t), 0.0);
}

TEST(Mindist, Validation) {
  const SymbolDistanceTable t(8);
  EXPECT_THROW(mindist("ab", "abc", 64, t), std::invalid_argument);
  EXPECT_THROW(mindist("", "", 64, t), std::invalid_argument);
}

TEST(Mindist, KnownValue) {
  const SymbolDistanceTable t(4);  // breakpoints {-0.67, 0, 0.67}
  // dist(a, c) = 0 - (-0.6745) = 0.6745 ; word length 4, n = 16.
  const double d = mindist("aaaa", "cccc", 16, t);
  const double cell = 0.674489;
  EXPECT_NEAR(d, std::sqrt(16.0 / 4.0) * std::sqrt(4.0 * cell * cell), 1e-3);
}

// The SAX guarantee: MINDIST lower-bounds the Euclidean distance between
// the z-normalised series. Property-tested over random series.
class MindistLowerBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MindistLowerBound, HoldsForRandomSeries) {
  Rng rng(GetParam());
  constexpr std::size_t n = 128;
  const SaxConfig cfg{16, 8};
  const SymbolDistanceTable table(cfg.alphabet);

  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.normal(0.0, 1.0);
  // Mix of related and unrelated series exercises small and large dists.
  const double mix = rng.uniform();
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = mix * a[i] + (1.0 - mix) * rng.normal(0.0, 1.0);
  }

  const auto za = znormalize(a);
  const auto zb = znormalize(b);
  double euclid = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    euclid += (za[i] - zb[i]) * (za[i] - zb[i]);
  }
  euclid = std::sqrt(euclid);

  const double lower = mindist(sax_word(a, cfg), sax_word(b, cfg), n, table);
  EXPECT_LE(lower, euclid + 1e-9)
      << "MINDIST must never exceed the true Euclidean distance";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MindistLowerBound,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(MindistRotationInvariant, FindsBestRotation) {
  const SymbolDistanceTable t(8);
  const std::string a = "aaccaacc";
  std::string b = "ccaaccaa";  // a rotated by 2
  std::size_t rot = 0;
  const double d = mindist_rotation_invariant(a, b, 64, t, &rot);
  EXPECT_EQ(d, 0.0);
  EXPECT_EQ(rot % 4, 2u);
}

TEST(MindistRotationInvariant, UpperBoundedByPlainMindist) {
  Rng rng(9);
  const SaxConfig cfg{16, 8};
  const SymbolDistanceTable t(cfg.alphabet);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(64);
    std::vector<double> b(64);
    for (auto& v : a) v = rng.normal(0.0, 1.0);
    for (auto& v : b) v = rng.normal(0.0, 1.0);
    const std::string wa = sax_word(a, cfg);
    const std::string wb = sax_word(b, cfg);
    EXPECT_LE(mindist_rotation_invariant(wa, wb, 64, t),
              mindist(wa, wb, 64, t) + 1e-12);
  }
}

}  // namespace
