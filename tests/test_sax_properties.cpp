// Randomized property tests for the SAX pipeline: z-normalisation
// moments, PAA invariants, and the MINDIST metric properties (symmetry,
// non-negativity, and the Lin et al. lower-bounding guarantee the
// qualifier's thresholds rest on).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "sax/breakpoints.hpp"
#include "sax/mindist.hpp"
#include "sax/paa.hpp"
#include "sax/sax_word.hpp"
#include "sax/znorm.hpp"

namespace {

using namespace hybridcnn;
using sax::SaxConfig;
using sax::SymbolDistanceTable;

std::vector<double> random_series(std::mt19937& rng, std::size_t n,
                                  double spread) {
  std::normal_distribution<double> dist(0.0, spread);
  std::vector<double> s(n);
  for (double& v : s) v = 5.0 + dist(rng);
  return s;
}

double euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(sum);
}

TEST(SaxProperties, ZnormHasZeroMeanUnitVariance) {
  std::mt19937 rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 32 + static_cast<std::size_t>(rng() % 480);
    const std::vector<double> series =
        random_series(rng, n, 0.5 + 3.0 * (trial % 5));
    const std::vector<double> z = sax::znormalize(series);

    const sax::SeriesStats st = sax::series_stats(z);
    EXPECT_NEAR(st.mean, 0.0, 1e-9);
    EXPECT_NEAR(st.stddev, 1.0, 1e-9);
  }
}

TEST(SaxProperties, ZnormOfNearConstantSeriesIsAllZero) {
  const std::vector<double> series(100, 42.0);
  for (const double v : sax::znormalize(series)) EXPECT_EQ(v, 0.0);
}

TEST(SaxProperties, PaaOfConstantSeriesIsConstant) {
  std::mt19937 rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 16 + static_cast<std::size_t>(rng() % 200);
    const std::size_t segments = 1 + static_cast<std::size_t>(rng() % n);
    const double value = -3.0 + 0.37 * trial;
    const std::vector<double> series(n, value);
    for (const double v : sax::paa(series, segments)) {
      EXPECT_NEAR(v, value, 1e-9);
    }
  }
}

TEST(SaxProperties, PaaPreservesTheSeriesMean) {
  // With fractional segment weighting the weighted total is conserved:
  // mean(PAA) == mean(series) for every segment count.
  std::mt19937 rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 20 + static_cast<std::size_t>(rng() % 300);
    const std::size_t segments = 1 + static_cast<std::size_t>(rng() % n);
    const std::vector<double> series = random_series(rng, n, 2.0);

    const std::vector<double> reduced = sax::paa(series, segments);
    double series_mean = 0.0;
    for (const double v : series) series_mean += v;
    series_mean /= static_cast<double>(n);
    double paa_mean = 0.0;
    for (const double v : reduced) paa_mean += v;
    paa_mean /= static_cast<double>(segments);
    EXPECT_NEAR(paa_mean, series_mean, 1e-9);
  }
}

TEST(SaxProperties, PaaIdentityWhenSegmentsEqualLength) {
  std::mt19937 rng(404);
  const std::vector<double> series = random_series(rng, 64, 1.5);
  const std::vector<double> out = sax::paa(series, series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_NEAR(out[i], series[i], 1e-9);
  }
}

TEST(SaxProperties, MindistIsSymmetricNonNegativeAndZeroOnSelf) {
  std::mt19937 rng(505);
  const SaxConfig cfg{16, 8};
  const SymbolDistanceTable table(cfg.alphabet);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 64;
    const std::string wa = sax::sax_word(random_series(rng, n, 2.0), cfg);
    const std::string wb = sax::sax_word(random_series(rng, n, 2.0), cfg);

    const double dab = sax::mindist(wa, wb, n, table);
    const double dba = sax::mindist(wb, wa, n, table);
    EXPECT_EQ(dab, dba);  // symbol table is symmetric -> exact symmetry
    EXPECT_GE(dab, 0.0);
    EXPECT_EQ(sax::mindist(wa, wa, n, table), 0.0);
  }
}

TEST(SaxProperties, MindistLowerBoundsEuclideanDistance) {
  // The Lin et al. 2003 soundness property: MINDIST of the SAX words
  // never exceeds the Euclidean distance of the z-normalised series.
  std::mt19937 rng(606);
  for (const std::size_t word_length : {8u, 16u, 32u}) {
    for (const std::size_t alphabet : {4u, 8u, 12u}) {
      const SaxConfig cfg{word_length, alphabet};
      const SymbolDistanceTable table(cfg.alphabet);
      for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 96;
        const std::vector<double> a = random_series(rng, n, 1.0 + trial % 4);
        const std::vector<double> b = random_series(rng, n, 1.0 + trial % 3);

        const double lower = sax::mindist(sax::sax_word(a, cfg),
                                          sax::sax_word(b, cfg), n, table);
        const double euclid = euclidean(sax::znormalize(a),
                                        sax::znormalize(b));
        EXPECT_LE(lower, euclid + 1e-9)
            << "w=" << word_length << " a=" << alphabet;
      }
    }
  }
}

TEST(SaxProperties, RotationInvariantMindistNeverExceedsPlainMindist) {
  std::mt19937 rng(707);
  const SaxConfig cfg{16, 8};
  const SymbolDistanceTable table(cfg.alphabet);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 128;
    const std::string wa = sax::sax_word(random_series(rng, n, 2.0), cfg);
    const std::string wb = sax::sax_word(random_series(rng, n, 2.0), cfg);

    std::size_t rot = 0;
    const double invariant =
        sax::mindist_rotation_invariant(wa, wb, n, table, &rot);
    EXPECT_LE(invariant, sax::mindist(wa, wb, n, table));
    EXPECT_LT(rot, wb.size());

    // And it must equal the explicit minimum over materialised rotations.
    double best = -1.0;
    std::string rotated = wb;
    for (std::size_t r = 0; r < wb.size(); ++r) {
      const double d = sax::mindist(wa, rotated, n, table);
      if (best < 0.0 || d < best) best = d;
      rotated.push_back(rotated.front());
      rotated.erase(rotated.begin());
    }
    EXPECT_EQ(invariant, best);
  }
}

TEST(SaxProperties, MindistScalesWithOriginalSeriesLength) {
  // MINDIST carries the sqrt(n/w) compensation factor; doubling the
  // source length scales every distance by sqrt(2).
  const SaxConfig cfg{8, 6};
  const SymbolDistanceTable table(cfg.alphabet);
  std::mt19937 rng(808);
  const std::string wa = sax::sax_word(random_series(rng, 64, 2.0), cfg);
  const std::string wb = sax::sax_word(random_series(rng, 64, 2.0), cfg);
  const double d64 = sax::mindist(wa, wb, 64, table);
  const double d128 = sax::mindist(wa, wb, 128, table);
  EXPECT_NEAR(d128, d64 * std::sqrt(2.0), 1e-12 + 1e-12 * std::abs(d128));
}

}  // namespace
