// Weight serialization: round-trip fidelity and artefact validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "data/dataset.hpp"
#include "nn/conv2d.hpp"
#include "nn/minicnn.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace hybridcnn;
using nn::load_weights;
using nn::save_weights;

const char* kPath = "/tmp/hybridcnn_weights_test.bin";

TEST(Serialize, RoundTripIsBitExact) {
  auto a = nn::make_minicnn({.num_classes = 5, .conv1_filters = 8,
                             .seed = 3});
  save_weights(*a, kPath);

  auto b = nn::make_minicnn({.num_classes = 5, .conv1_filters = 8,
                             .seed = 99});  // different init
  load_weights(*b, kPath);

  const auto pa = a->params();
  const auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(*pa[i].value, *pb[i].value) << pa[i].name;
  }
  std::remove(kPath);
}

TEST(Serialize, TrainedModelKeepsBehaviour) {
  auto net = nn::make_minicnn({.num_classes = data::kNumClasses,
                               .conv1_filters = 8, .seed = 5});
  const auto train_data = data::make_dataset(15, {}, 701);
  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 15;
  tc.learning_rate = 0.01f;
  nn::train(*net, train_data, tc);

  const auto test_data = data::make_dataset(10, {}, 702);
  const auto before = nn::evaluate(*net, test_data, data::kNumClasses);
  save_weights(*net, kPath);

  auto restored = nn::make_minicnn({.num_classes = data::kNumClasses,
                                    .conv1_filters = 8, .seed = 77});
  load_weights(*restored, kPath);
  const auto after = nn::evaluate(*restored, test_data, data::kNumClasses);
  EXPECT_DOUBLE_EQ(after.accuracy, before.accuracy);
  EXPECT_DOUBLE_EQ(after.mean_true_class_confidence,
                   before.mean_true_class_confidence);
  std::remove(kPath);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto a = nn::make_minicnn({.num_classes = 5, .conv1_filters = 8,
                             .seed = 1});
  save_weights(*a, kPath);

  // Different filter count: shapes differ.
  auto b = nn::make_minicnn({.num_classes = 5, .conv1_filters = 16,
                             .seed = 1});
  EXPECT_THROW(load_weights(*b, kPath), std::invalid_argument);
  std::remove(kPath);
}

TEST(Serialize, RejectsTruncatedFile) {
  auto net = nn::make_minicnn({.num_classes = 5, .conv1_filters = 8,
                               .seed = 1});
  save_weights(*net, kPath);
  // Truncate the artefact.
  {
    std::FILE* f = std::fopen(kPath, "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size / 2), 0);
    std::fclose(f);
  }
  EXPECT_THROW(load_weights(*net, kPath), std::runtime_error);
  std::remove(kPath);
}

TEST(Serialize, RejectsGarbageMagic) {
  {
    std::FILE* f = std::fopen(kPath, "wb");
    ASSERT_NE(f, nullptr);
    const char junk[16] = "not-a-weights-f";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto net = nn::make_minicnn({});
  EXPECT_THROW(load_weights(*net, kPath), std::runtime_error);
  std::remove(kPath);
}

TEST(Serialize, MissingFileThrows) {
  auto net = nn::make_minicnn({});
  EXPECT_THROW(load_weights(*net, "/tmp/missing_weights_4711.bin"),
               std::runtime_error);
  EXPECT_THROW(save_weights(*net, "/nonexistent-dir/w.bin"),
               std::runtime_error);
}

}  // namespace
