// Shape matching: analytic polygon signatures, corner counting and the
// octagon qualifier decision (Figure 3 logic).
#include <gtest/gtest.h>

#include <cmath>

#include "data/renderer.hpp"
#include "sax/shape_match.hpp"
#include "vision/edge_map.hpp"
#include "vision/radial.hpp"

namespace {

using namespace hybridcnn::sax;
using hybridcnn::tensor::Tensor;

TEST(PolygonSignature, UnitCircumradiusRange) {
  const auto s = polygon_signature(8, 360);
  ASSERT_EQ(s.size(), 360u);
  double lo = 2.0;
  double hi = 0.0;
  for (const double v : s) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(hi, 1.0, 1e-6);                       // corners
  EXPECT_NEAR(lo, std::cos(M_PI / 8.0), 1e-4);      // edge midpoints
}

TEST(PolygonSignature, PeriodicityMatchesSides) {
  const std::size_t samples = 360;
  for (const std::size_t sides : {3u, 4u, 6u, 8u}) {
    const auto s = polygon_signature(sides, samples);
    const std::size_t period = samples / sides;
    for (std::size_t i = 0; i < samples; ++i) {
      EXPECT_NEAR(s[i], s[(i + period) % samples], 1e-6)
          << "sides=" << sides << " i=" << i;
    }
  }
}

TEST(PolygonSignature, RotationShiftsSeries) {
  const std::size_t samples = 360;
  const std::size_t shift = 10;  // whole samples so the shift is exact
  const double rot =
      2.0 * M_PI * static_cast<double>(shift) / static_cast<double>(samples);
  const auto base = polygon_signature(8, samples);
  const auto rotated = polygon_signature(8, samples, rot);
  // Rotating by k samples' worth of angle circularly shifts the series.
  for (std::size_t i = 0; i < samples; ++i) {
    EXPECT_NEAR(rotated[(i + shift) % samples], base[i], 1e-6);
  }
}

TEST(PolygonSignature, Validation) {
  EXPECT_THROW(polygon_signature(2, 100), std::invalid_argument);
  EXPECT_THROW(polygon_signature(8, 0), std::invalid_argument);
}

// Corner counting on analytic polygons, parameterised over side count.
class CornerCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CornerCount, AnalyticPolygonHasExactlySidesCorners) {
  const std::size_t sides = GetParam();
  const auto s = polygon_signature(sides, 360);
  EXPECT_EQ(count_corners(s), static_cast<int>(sides));
}

INSTANTIATE_TEST_SUITE_P(Sides, CornerCount,
                         ::testing::Values(3u, 4u, 5u, 6u, 8u));

TEST(CountCorners, CircleHasNone) {
  const std::vector<double> flat(360, 1.0);
  EXPECT_EQ(count_corners(flat), 0);
}

TEST(CountCorners, TooShortSeriesIsZero) {
  EXPECT_EQ(count_corners({1.0, 2.0, 1.0}), 0);
}

TEST(ShapeTemplate, OctagonWordIsPeriodic) {
  const std::string w = shape_template_word(8, {32, 8});
  ASSERT_EQ(w.size(), 32u);
  // 32 letters over 8 periods: the word repeats every 4 letters.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(w[i], w[(i + 4) % 32]);
  }
}

TEST(MatchShape, AnalyticOctagonMatchesItself) {
  const auto s = polygon_signature(8, 360);
  const auto r = match_shape(s, 8);
  EXPECT_TRUE(r.match);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  EXPECT_EQ(r.corners, 8);
}

TEST(MatchShape, RotatedOctagonStillMatches) {
  for (double deg = 0.0; deg < 45.0; deg += 7.5) {
    const auto s = polygon_signature(8, 360, deg * M_PI / 180.0);
    const auto r = match_shape(s, 8);
    EXPECT_TRUE(r.match) << "rotation " << deg << " deg, dist=" << r.distance
                         << " corners=" << r.corners;
  }
}

TEST(MatchShape, CircleDoesNotMatchOctagon) {
  const std::vector<double> circle(360, 1.0);
  const auto r = match_shape(circle, 8);
  EXPECT_FALSE(r.match) << "flat signature has no corners";
}

TEST(MatchShape, SquareDoesNotMatchOctagon) {
  const auto square = polygon_signature(4, 360);
  const auto r = match_shape(square, 8);
  EXPECT_FALSE(r.match) << "dist=" << r.distance
                        << " corners=" << r.corners;
}

TEST(MatchShape, TriangleDoesNotMatchOctagon) {
  const auto tri = polygon_signature(3, 360);
  const auto r = match_shape(tri, 8);
  EXPECT_FALSE(r.match);
}

TEST(MatchShape, ShortSeriesIsRejected) {
  const std::vector<double> s(8, 1.0);
  const auto r = match_shape(s, 8);  // shorter than word length 32
  EXPECT_FALSE(r.match);
}

// End-to-end on rendered pixels: the Fig. 3 pipeline.
class RenderedStopSign : public ::testing::TestWithParam<double> {};

TEST_P(RenderedStopSign, SilhouetteMatchesOctagonTemplate) {
  const double angle_deg = GetParam();
  const Tensor img = hybridcnn::data::render_stop_sign(227, angle_deg);
  const auto mask = hybridcnn::vision::dominant_shape(img);
  const auto series = hybridcnn::vision::shape_signature(mask, 360);
  ASSERT_GE(series.size(), 360u);
  const auto r = match_shape(series, 8);
  EXPECT_TRUE(r.match) << "angle " << angle_deg << ": dist=" << r.distance
                       << " corners=" << r.corners << " word=" << r.word;
}

INSTANTIATE_TEST_SUITE_P(Angles, RenderedStopSign,
                         ::testing::Values(0.0, 5.0, 10.0, -8.0, 20.0));

TEST(RenderedShapes, NonOctagonsRejectedByQualifierLogic) {
  using hybridcnn::data::RenderParams;
  using hybridcnn::data::SignClass;
  for (const SignClass cls :
       {SignClass::kSpeedLimit, SignClass::kYield, SignClass::kParking,
        SignClass::kPriority}) {
    RenderParams p;
    p.cls = cls;
    p.size = 227;
    p.scale = 0.85;
    p.noise_sigma = 0.015;
    const Tensor img = hybridcnn::data::render_sign(p);
    const auto mask = hybridcnn::vision::dominant_shape(img);
    const auto series = hybridcnn::vision::shape_signature(mask, 360);
    ASSERT_FALSE(series.empty());
    const auto r = match_shape(series, 8);
    EXPECT_FALSE(r.match)
        << hybridcnn::data::class_name(cls) << " wrongly qualified: dist="
        << r.distance << " corners=" << r.corners;
  }
}

}  // namespace
