// SIMD fast-path bit-identity contract: the pixel-lane vectorized
// fault-free kernels (reliable/static_dispatch.hpp over runtime/isa.hpp)
// must produce the same output bits, reports and executor/injector state
// as the scalar fast path (kill-switch closed) and the generic
// virtual-dispatch oracle — across schemes, interior/border/lane-remainder
// geometries, stride variants and thread counts. Armed injectors must
// bypass the vector path entirely (it exists only where no fault can be
// injected), which the faulty cases here pin down.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "faultsim/bitflip.hpp"
#include "faultsim/campaign.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/reliable_linear.hpp"
#include "reliable/static_dispatch.hpp"
#include "runtime/compute_context.hpp"
#include "runtime/isa.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::faultsim::CampaignSummary;
using hybridcnn::faultsim::FaultConfig;
using hybridcnn::faultsim::FaultInjector;
using hybridcnn::faultsim::FaultKind;
using hybridcnn::reliable::ConvSpec;
using hybridcnn::reliable::Executor;
using hybridcnn::reliable::make_executor;
using hybridcnn::reliable::ReliableConv2d;
using hybridcnn::reliable::ReliableLinear;
using hybridcnn::reliable::ReliableResult;
using hybridcnn::reliable::detail::ConvKernel;
using hybridcnn::reliable::detail::parse_reliable_kernel;
using hybridcnn::reliable::detail::reliable_kernel_choice;
using hybridcnn::reliable::detail::reliable_simd_enabled;
using hybridcnn::reliable::detail::set_reliable_kernel_choice;
using hybridcnn::reliable::detail::set_reliable_simd_enabled;
using hybridcnn::runtime::ComputeContext;
using hybridcnn::runtime::isa::kFloatLanes;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

/// Restores the kill-switch state on scope exit so tests cannot leak a
/// disabled vector path into each other.
class SimdGuard {
 public:
  SimdGuard() : saved_(reliable_simd_enabled()) {}
  ~SimdGuard() { set_reliable_simd_enabled(saved_); }

 private:
  bool saved_;
};

/// Same for the kernel-strategy override: tests that pin a kernel must
/// not leak the forced choice (or clobber an HYBRIDCNN_RELIABLE_KERNEL
/// override the whole suite is running under) into other tests.
class KernelGuard {
 public:
  KernelGuard() : saved_(reliable_kernel_choice()) {}
  ~KernelGuard() { set_reliable_kernel_choice(saved_); }

 private:
  ConvKernel saved_;
};

struct Geometry {
  std::size_t out_c, in_c, k, stride, pad, h, w;
};

// Wide outputs on purpose: every geometry except the last has an interior
// ox span of at least 16 (one full AVX-512 lane block, several at
// narrower ISAs) plus a lane remainder; pad variants put border pixels on
// both sides of the vector blocks, and stride 2 exercises the gathered
// (non-contiguous) lane loads. The last geometry's interior is narrower
// than a 16-wide block, covering the scalar fallback on wide ISAs.
const std::vector<Geometry> kGeometries = {
    {4, 3, 3, 1, 1, 24, 40},  // stride 1, borders + 38-wide interior
    {3, 2, 5, 2, 2, 30, 50},  // stride 2: gathered lanes, 22-wide interior
    {2, 1, 3, 1, 0, 20, 36},  // valid conv: interior-only rows
    {2, 2, 1, 1, 0, 6, 21},   // 1x1 kernel, odd width lane remainder
    {1, 1, 5, 1, 4, 12, 28},  // heavy pad: 4-wide borders both sides
    {2, 2, 3, 1, 1, 5, 9},    // interior (7) below a 16-lane block
};

ReliableConv2d make_conv(const Geometry& g, std::uint64_t seed = 11) {
  Rng rng(seed);
  Tensor weights(Shape{g.out_c, g.in_c, g.k, g.k});
  weights.fill_normal(rng, 0.0f, 0.5f);
  Tensor bias(Shape{g.out_c});
  bias.fill_normal(rng, 0.0f, 0.1f);
  return {std::move(weights), std::move(bias), ConvSpec{g.stride, g.pad},
          {}};
}

Tensor make_input(const Geometry& g, std::uint64_t seed = 23) {
  Rng rng(seed);
  Tensor input(Shape{g.in_c, g.h, g.w});
  input.fill_normal(rng, 0.0f, 1.0f);
  return input;
}

void expect_bits_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.count(); ++i) {
    ASSERT_EQ(hybridcnn::faultsim::float_bits(a[i]),
              hybridcnn::faultsim::float_bits(b[i]))
        << "first differing element at flat index " << i;
  }
  ASSERT_TRUE(hybridcnn::tensor::bit_identical(a, b));
}

// ----------------------------------------------------------- geometry

TEST(SimdDispatchGeometry, InteriorSpansCoverBlocksAndRemainders) {
  // The sweep below only proves something if the vector kernel actually
  // runs: the wide geometries must hold at least one full lane block.
  using hybridcnn::reliable::detail::ConvPlan;
  for (std::size_t gi = 0; gi + 1 < kGeometries.size(); ++gi) {
    const Geometry& g = kGeometries[gi];
    const ReliableConv2d conv = make_conv(g);
    const Shape in{g.in_c, g.h, g.w};
    const ConvPlan plan(conv.output_shape(in), in,
                        Shape{g.out_c, g.in_c, g.k, g.k}, g.stride, g.pad);
    EXPECT_GE(plan.interior_x_end - plan.interior_x_begin, kFloatLanes)
        << "geometry " << gi << " has no full lane block";
  }
  // And at least one wide geometry must leave a lane remainder, so the
  // scalar tail after the vector blocks is exercised too.
  bool any_remainder = false;
  for (std::size_t gi = 0; gi + 1 < kGeometries.size(); ++gi) {
    const Geometry& g = kGeometries[gi];
    const ReliableConv2d conv = make_conv(g);
    const Shape in{g.in_c, g.h, g.w};
    const ConvPlan plan(conv.output_shape(in), in,
                        Shape{g.out_c, g.in_c, g.k, g.k}, g.stride, g.pad);
    any_remainder |=
        (plan.interior_x_end - plan.interior_x_begin) % kFloatLanes != 0;
  }
  EXPECT_TRUE(any_remainder);
}

// ------------------------------------------------- conv fault-free path

TEST(SimdDispatchConv, VectorScalarAndGenericAgreeBitForBit) {
  const SimdGuard guard;
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    for (std::size_t gi = 0; gi < kGeometries.size(); ++gi) {
      SCOPED_TRACE(std::string(scheme) + " geometry " + std::to_string(gi));
      const Geometry& g = kGeometries[gi];
      const ReliableConv2d conv = make_conv(g);
      const Tensor input = make_input(g);

      set_reliable_simd_enabled(true);
      const auto simd_exec = make_executor(scheme, nullptr);
      const ReliableResult simd = conv.forward(input, *simd_exec);

      set_reliable_simd_enabled(false);
      const auto scalar_exec = make_executor(scheme, nullptr);
      const ReliableResult scalar = conv.forward(input, *scalar_exec);

      const auto oracle_exec = make_executor(scheme, nullptr);
      const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);

      ASSERT_TRUE(simd.report.ok);
      expect_bits_equal(simd.output, scalar.output);
      expect_bits_equal(simd.output, oracle.output);
      EXPECT_TRUE(simd.report == scalar.report);
      EXPECT_TRUE(simd.report == oracle.report);
      EXPECT_EQ(simd_exec->stats().logical_ops,
                oracle_exec->stats().logical_ops);
      EXPECT_EQ(simd_exec->stats().executions,
                oracle_exec->stats().executions);
    }
  }
}

TEST(SimdDispatchConv, CleanInjectorCursorIsReplayedUnderSimd) {
  // A kNone injector keeps the fast path eligible but makes the PE
  // cursor and execution counters observable: the vector path must
  // credit them exactly like the scalar and generic paths.
  const SimdGuard guard;
  set_reliable_simd_enabled(true);
  FaultConfig cfg;
  cfg.kind = FaultKind::kNone;
  cfg.num_pes = 7;
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    SCOPED_TRACE(scheme);
    const Geometry& g = kGeometries[0];
    const ReliableConv2d conv = make_conv(g);
    const Tensor input = make_input(g);
    const auto simd_exec =
        make_executor(scheme, std::make_shared<FaultInjector>(cfg, 3));
    const auto oracle_exec =
        make_executor(scheme, std::make_shared<FaultInjector>(cfg, 3));
    const ReliableResult simd = conv.forward(input, *simd_exec);
    const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);
    ASSERT_GT(simd_exec->injector()->stats().executions, 0u);
    expect_bits_equal(simd.output, oracle.output);
    EXPECT_TRUE(simd.report == oracle.report);
    EXPECT_EQ(simd_exec->injector()->stats().executions,
              oracle_exec->injector()->stats().executions);
    EXPECT_EQ(simd_exec->injector()->next_pe(),
              oracle_exec->injector()->next_pe());
  }
}

TEST(SimdDispatchConv, ArmedInjectorBypassesVectorPath) {
  // With faults possible the kernel must stay on the qualified scalar
  // engine regardless of the kill-switch: same bits, reports and
  // injector draws as the generic oracle in both switch positions.
  const SimdGuard guard;
  FaultConfig cfg;
  cfg.kind = FaultKind::kTransient;
  cfg.probability = 2e-3;
  cfg.bit = -1;
  const Geometry& g = kGeometries[0];
  const ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);
  for (const bool simd_on : {true, false}) {
    SCOPED_TRACE(simd_on ? "simd on" : "simd off");
    set_reliable_simd_enabled(simd_on);
    for (const char* scheme : {"dmr", "tmr"}) {
      const auto fast_exec =
          make_executor(scheme, std::make_shared<FaultInjector>(cfg, 41));
      const auto oracle_exec =
          make_executor(scheme, std::make_shared<FaultInjector>(cfg, 41));
      const ReliableResult fast = conv.forward(input, *fast_exec);
      const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);
      expect_bits_equal(fast.output, oracle.output);
      EXPECT_TRUE(fast.report == oracle.report);
      EXPECT_EQ(fast_exec->injector()->stats().faults,
                oracle_exec->injector()->stats().faults);
    }
  }
}

TEST(SimdDispatchConv, KillSwitchTogglesAndRestores) {
  const SimdGuard guard;
  set_reliable_simd_enabled(true);
  EXPECT_TRUE(reliable_simd_enabled());
  set_reliable_simd_enabled(false);
  EXPECT_FALSE(reliable_simd_enabled());
  set_reliable_simd_enabled(true);
  EXPECT_TRUE(reliable_simd_enabled());
}

// ---------------------------------------------------------- linear path

TEST(SimdDispatchLinear, VectorScalarAndGenericAgreeAcrossWidths) {
  const SimdGuard guard;
  // Widths straddling the lane count: below one block, exactly one
  // block, blocks + remainder, and a larger non-multiple.
  const std::size_t widths[] = {3, kFloatLanes, 2 * kFloatLanes + 3, 37};
  for (const std::size_t out_n : widths) {
    for (const char* scheme : {"simplex", "dmr", "tmr"}) {
      SCOPED_TRACE(std::string(scheme) + " out_n " + std::to_string(out_n));
      Rng rng(5 + out_n);
      Tensor weights(Shape{out_n, 19});
      weights.fill_normal(rng, 0.0f, 0.4f);
      Tensor bias(Shape{out_n});
      bias.fill_normal(rng, 0.0f, 0.1f);
      const ReliableLinear linear(weights, bias);
      Tensor input(Shape{19});
      input.fill_normal(rng, 0.0f, 1.0f);

      set_reliable_simd_enabled(true);
      const auto simd_exec = make_executor(scheme, nullptr);
      const ReliableResult simd = linear.forward(input, *simd_exec);

      set_reliable_simd_enabled(false);
      const auto scalar_exec = make_executor(scheme, nullptr);
      const ReliableResult scalar = linear.forward(input, *scalar_exec);

      const auto oracle_exec = make_executor(scheme, nullptr);
      const ReliableResult oracle =
          linear.forward_generic(input, *oracle_exec);

      ASSERT_TRUE(simd.report.ok);
      expect_bits_equal(simd.output, scalar.output);
      expect_bits_equal(simd.output, oracle.output);
      EXPECT_TRUE(simd.report == scalar.report);
      EXPECT_TRUE(simd.report == oracle.report);
      EXPECT_EQ(simd_exec->stats().executions,
                oracle_exec->stats().executions);
    }
  }
}

// -------------------------------------------------- thread-count sweep

class SimdDispatchThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimdDispatchThreads, FaultFreeCampaignMatchesGeneric) {
  // Fault-free campaign fanned across the pool: every run takes the
  // vector fast path concurrently; the summary and per-run outputs must
  // match the generic oracle at every thread count.
  const SimdGuard guard;
  set_reliable_simd_enabled(true);
  ComputeContext::set_global_threads(GetParam());

  const Geometry& g = kGeometries[1];
  const ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);
  const Tensor golden = conv.reference_forward(input);
  constexpr std::size_t kRuns = 12;

  const auto make_exec = [&](std::size_t) {
    return make_executor("simplex", nullptr);
  };
  const auto classify = [&](std::size_t, const ReliableResult& result,
                            Executor&) {
    return hybridcnn::faultsim::classify(false, !result.report.ok,
                                         result.output == golden);
  };
  const CampaignSummary fast =
      conv.forward_campaign(input, kRuns, make_exec, classify);
  const CampaignSummary oracle =
      hybridcnn::faultsim::run_campaign(kRuns, [&](std::size_t run) {
        const auto exec = make_exec(run);
        const ReliableResult result = conv.forward_generic(input, *exec);
        return classify(run, result, *exec);
      });
  ComputeContext::set_global_threads(1);

  EXPECT_EQ(fast.runs, oracle.runs);
  EXPECT_EQ(fast.correct, oracle.correct);
  EXPECT_EQ(fast.correct, kRuns);  // fault-free: all bit-exact
  EXPECT_EQ(fast.detected_abort, oracle.detected_abort);
  EXPECT_EQ(fast.silent_corruption, oracle.silent_corruption);
}

INSTANTIATE_TEST_SUITE_P(Threads, SimdDispatchThreads,
                         ::testing::Values<std::size_t>(1, 2, 8));

// ------------------------------------------- kernel-strategy four-way

/// Channel-lane vs pixel-lane vs scalar vs generic, across every scheme
/// and geometry, at each pool width. The channel kernel is forced even
/// where the auto heuristic would not pick it (out_c below a lane block)
/// so its masked tail-store path is exercised hard; the pixel kernel is
/// forced even where it is ineligible (narrow interior), which must fall
/// back to the scalar loop — also bit-identical.
class SimdKernelThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimdKernelThreads, ChannelPixelScalarGenericAgreeBitForBit) {
  const SimdGuard guard;
  const KernelGuard kernel_guard;
  ComputeContext::set_global_threads(GetParam());
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    for (std::size_t gi = 0; gi < kGeometries.size(); ++gi) {
      SCOPED_TRACE(std::string(scheme) + " geometry " + std::to_string(gi) +
                   " threads " + std::to_string(GetParam()));
      const Geometry& g = kGeometries[gi];
      const ReliableConv2d conv = make_conv(g);
      const Tensor input = make_input(g);

      const auto oracle_exec = make_executor(scheme, nullptr);
      const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);

      set_reliable_simd_enabled(false);
      set_reliable_kernel_choice(ConvKernel::kAuto);
      const auto scalar_exec = make_executor(scheme, nullptr);
      const ReliableResult scalar = conv.forward(input, *scalar_exec);

      set_reliable_simd_enabled(true);
      for (const ConvKernel kernel :
           {ConvKernel::kPixel, ConvKernel::kChannel, ConvKernel::kAuto}) {
        set_reliable_kernel_choice(kernel);
        const auto exec = make_executor(scheme, nullptr);
        const ReliableResult fast = conv.forward(input, *exec);
        ASSERT_TRUE(fast.report.ok);
        expect_bits_equal(fast.output, oracle.output);
        EXPECT_TRUE(fast.report == oracle.report);
        EXPECT_EQ(exec->stats().logical_ops, oracle_exec->stats().logical_ops);
        EXPECT_EQ(exec->stats().executions, oracle_exec->stats().executions);
      }
      expect_bits_equal(scalar.output, oracle.output);
      EXPECT_TRUE(scalar.report == oracle.report);
    }
  }
  ComputeContext::set_global_threads(1);
}

INSTANTIATE_TEST_SUITE_P(Threads, SimdKernelThreads,
                         ::testing::Values<std::size_t>(1, 2, 8));

// --------------------------------------------- weight-repack staleness

TEST(WeightRepack, ConvPackIsInvalidatedBySetWeights) {
  const SimdGuard guard;
  const KernelGuard kernel_guard;
  set_reliable_simd_enabled(true);
  set_reliable_kernel_choice(ConvKernel::kChannel);

  const Geometry& g = kGeometries[0];
  ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);

  conv.prepare_fast_path();
  const auto pack_before = conv.channel_pack();
  const std::uint64_t gen_before = conv.weight_generation();
  if (pack_before != nullptr) {  // nullptr on non-SIMD targets
    EXPECT_EQ(pack_before->generation, gen_before);
  }

  // Mutate the weights: the cached pack must be rebuilt, and the forward
  // must match a conv constructed fresh with the new weights bit for bit.
  Rng rng(97);
  Tensor new_weights(Shape{g.out_c, g.in_c, g.k, g.k});
  new_weights.fill_normal(rng, 0.0f, 0.5f);
  conv.set_weights(new_weights);
  EXPECT_EQ(conv.weight_generation(), gen_before + 1);

  const auto pack_after = conv.channel_pack();
  if (pack_after != nullptr) {
    EXPECT_NE(pack_before.get(), pack_after.get());
    EXPECT_EQ(pack_after->generation, gen_before + 1);
  }

  Tensor bias(Shape{g.out_c});
  Rng bias_rng(11);  // make_conv's seed: regenerate the same bias
  Tensor w_dummy(Shape{g.out_c, g.in_c, g.k, g.k});
  w_dummy.fill_normal(bias_rng, 0.0f, 0.5f);
  bias.fill_normal(bias_rng, 0.0f, 0.1f);
  const ReliableConv2d fresh(new_weights, bias, ConvSpec{g.stride, g.pad},
                             {});

  const auto stale_exec = make_executor("simplex", nullptr);
  const auto fresh_exec = make_executor("simplex", nullptr);
  const ReliableResult updated = conv.forward(input, *stale_exec);
  const ReliableResult expected = fresh.forward(input, *fresh_exec);
  expect_bits_equal(updated.output, expected.output);
  EXPECT_TRUE(updated.report == expected.report);

  // And a stale-shape update must be rejected without touching state.
  Tensor bad(Shape{g.out_c, g.in_c, g.k, g.k + 1});
  EXPECT_THROW(conv.set_weights(bad), std::invalid_argument);
  EXPECT_EQ(conv.weight_generation(), gen_before + 1);
}

TEST(WeightRepack, LinearPackIsInvalidatedBySetWeights) {
  const SimdGuard guard;
  set_reliable_simd_enabled(true);

  const std::size_t out_n = 2 * kFloatLanes + 3;
  const std::size_t in_n = 19;
  Rng rng(5);
  Tensor weights(Shape{out_n, in_n});
  weights.fill_normal(rng, 0.0f, 0.4f);
  Tensor bias(Shape{out_n});
  bias.fill_normal(rng, 0.0f, 0.1f);
  ReliableLinear linear(weights, bias);
  Tensor input(Shape{in_n});
  input.fill_normal(rng, 0.0f, 1.0f);

  linear.prepare_fast_path();
  const auto pack_before = linear.neuron_pack();
  const std::uint64_t gen_before = linear.weight_generation();

  Tensor new_weights(Shape{out_n, in_n});
  new_weights.fill_normal(rng, 0.0f, 0.4f);
  linear.set_weights(new_weights);
  EXPECT_EQ(linear.weight_generation(), gen_before + 1);
  const auto pack_after = linear.neuron_pack();
  if (pack_after != nullptr) {
    EXPECT_NE(pack_before.get(), pack_after.get());
    EXPECT_EQ(pack_after->generation, gen_before + 1);
  }

  const ReliableLinear fresh(new_weights, bias);
  const auto updated_exec = make_executor("simplex", nullptr);
  const auto fresh_exec = make_executor("simplex", nullptr);
  const ReliableResult updated = linear.forward(input, *updated_exec);
  const ReliableResult expected = fresh.forward(input, *fresh_exec);
  expect_bits_equal(updated.output, expected.output);
  EXPECT_TRUE(updated.report == expected.report);

  Tensor bad(Shape{out_n, in_n + 1});
  EXPECT_THROW(linear.set_weights(bad), std::invalid_argument);
}

// ------------------------------------------------- override handling

TEST(KernelChoice, ParseAcceptsExactSpellingsOnly) {
  EXPECT_EQ(parse_reliable_kernel(nullptr), std::nullopt);
  EXPECT_EQ(parse_reliable_kernel("pixel"), ConvKernel::kPixel);
  EXPECT_EQ(parse_reliable_kernel("channel"), ConvKernel::kChannel);
  EXPECT_EQ(parse_reliable_kernel("auto"), ConvKernel::kAuto);
  // Typos and near-misses must not silently pin a strategy.
  EXPECT_EQ(parse_reliable_kernel(""), std::nullopt);
  EXPECT_EQ(parse_reliable_kernel("Pixel"), std::nullopt);
  EXPECT_EQ(parse_reliable_kernel("CHANNEL"), std::nullopt);
  EXPECT_EQ(parse_reliable_kernel("pixel "), std::nullopt);
  EXPECT_EQ(parse_reliable_kernel("channels"), std::nullopt);
  EXPECT_EQ(parse_reliable_kernel("0"), std::nullopt);
}

TEST(KernelChoice, SetAndRestoreRoundTrips) {
  const KernelGuard kernel_guard;
  for (const ConvKernel kernel :
       {ConvKernel::kPixel, ConvKernel::kChannel, ConvKernel::kAuto}) {
    set_reliable_kernel_choice(kernel);
    EXPECT_EQ(reliable_kernel_choice(), kernel);
  }
}

}  // namespace
