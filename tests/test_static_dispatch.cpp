// Static-dispatch bit-identity contract: for every (scheme, fault kind,
// geometry, seed), the devirtualized kernels forward() selects must
// produce the same output bits, the same ExecutionReport fields, the same
// ExecutorStats/InjectorStats and the same injector cursor as the
// retained generic virtual-dispatch path (forward_generic) — including
// the fault-free fast path's closed-form bookkeeping and the abort
// machinery under persistent faults, at every thread count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "faultsim/bitflip.hpp"
#include "faultsim/campaign.hpp"
#include "faultsim/injector.hpp"
#include "reliable/executor.hpp"
#include "reliable/reliable_conv.hpp"
#include "reliable/reliable_linear.hpp"
#include "runtime/compute_context.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::faultsim::CampaignSummary;
using hybridcnn::faultsim::FaultConfig;
using hybridcnn::faultsim::FaultInjector;
using hybridcnn::faultsim::FaultKind;
using hybridcnn::faultsim::FaultTarget;
using hybridcnn::reliable::ConvSpec;
using hybridcnn::reliable::ExecutionReport;
using hybridcnn::reliable::Executor;
using hybridcnn::reliable::LayerDmrConv2d;
using hybridcnn::reliable::make_executor;
using hybridcnn::reliable::Qualified;
using hybridcnn::reliable::ReliabilityPolicy;
using hybridcnn::reliable::ReliableConv2d;
using hybridcnn::reliable::ReliableLinear;
using hybridcnn::reliable::ReliableResult;
using hybridcnn::reliable::ReportMode;
using hybridcnn::runtime::ComputeContext;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

// ------------------------------------------------------------- helpers

struct Geometry {
  std::size_t out_c, in_c, k, stride, pad, h, w;
};

// Pad/stride edge cases on purpose: no-pad, pad < k, stride > k, pad
// close to k (border outputs lose most taps), 1x1 kernel, non-square.
const std::vector<Geometry> kGeometries = {
    {4, 3, 3, 2, 1, 13, 13},  //
    {2, 1, 3, 1, 0, 8, 8},    //
    {3, 2, 5, 3, 2, 17, 11},  //
    {1, 1, 3, 1, 1, 3, 3},    //
    {2, 2, 1, 1, 0, 5, 7},    //
    {1, 1, 5, 2, 4, 6, 6},    //
};

ReliableConv2d make_conv(const Geometry& g, ReliabilityPolicy policy = {},
                         std::uint64_t seed = 11) {
  Rng rng(seed);
  Tensor weights(Shape{g.out_c, g.in_c, g.k, g.k});
  weights.fill_normal(rng, 0.0f, 0.5f);
  Tensor bias(Shape{g.out_c});
  bias.fill_normal(rng, 0.0f, 0.1f);
  return {std::move(weights), std::move(bias), ConvSpec{g.stride, g.pad},
          policy};
}

Tensor make_input(const Geometry& g, std::uint64_t seed = 23) {
  Rng rng(seed);
  Tensor input(Shape{g.in_c, g.h, g.w});
  input.fill_normal(rng, 0.0f, 1.0f);
  return input;
}

FaultConfig config_for(FaultKind kind,
                       FaultTarget target = FaultTarget::kResult) {
  FaultConfig cfg;
  cfg.kind = kind;
  cfg.target = target;
  cfg.bit = -1;
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kTransient:
      cfg.probability = 2e-3;
      break;
    case FaultKind::kIntermittent:
      cfg.probability = 1e-3;
      cfg.burst_continue = 0.6;
      break;
    case FaultKind::kPermanent:
      // A PE fraction high enough that DMR/TMR runs exercise the abort
      // machinery (bucket exhaustion, failed_op_index).
      cfg.probability = 0.3;
      cfg.num_pes = 8;
      break;
  }
  return cfg;
}

void expect_outputs_bit_identical(const Tensor& a, const Tensor& b) {
  // Element loop for an indexed diagnostic on failure; the shared
  // helper at the end is the authoritative contract check.
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.count(); ++i) {
    ASSERT_EQ(hybridcnn::faultsim::float_bits(a[i]),
              hybridcnn::faultsim::float_bits(b[i]))
        << "first differing element at flat index " << i;
  }
  ASSERT_TRUE(hybridcnn::tensor::bit_identical(a, b));
}

void expect_reports_equal(const ExecutionReport& a,
                          const ExecutionReport& b) {
  // Field-wise expectations first for readable failure diagnostics; the
  // defaulted operator== at the end guarantees any field added to
  // ExecutionReport later stays covered.
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.logical_ops, b.logical_ops);
  EXPECT_EQ(a.detected_errors, b.detected_errors);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.corrected_errors, b.corrected_errors);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.bucket_peak, b.bucket_peak);
  EXPECT_EQ(a.bucket_exhausted, b.bucket_exhausted);
  EXPECT_EQ(a.failed_op_index, b.failed_op_index);
  EXPECT_TRUE(a == b) << "ExecutionReport field not covered above differs";
}

void expect_executors_equal(Executor& a, Executor& b) {
  EXPECT_EQ(a.stats().logical_ops, b.stats().logical_ops);
  EXPECT_EQ(a.stats().executions, b.stats().executions);
  EXPECT_EQ(a.stats().disagreements, b.stats().disagreements);
  ASSERT_EQ(a.injector() != nullptr, b.injector() != nullptr);
  if (a.injector() != nullptr) {
    EXPECT_EQ(a.injector()->stats().executions,
              b.injector()->stats().executions);
    EXPECT_EQ(a.injector()->stats().faults, b.injector()->stats().faults);
    EXPECT_EQ(a.injector()->next_pe(), b.injector()->next_pe());
  }
}

// ------------------------------------------- conv: scheme x kind matrix

TEST(StaticDispatchConv, MatchesGenericAcrossSchemesKindsAndGeometries) {
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    for (const FaultKind kind :
         {FaultKind::kNone, FaultKind::kTransient, FaultKind::kIntermittent,
          FaultKind::kPermanent}) {
      for (std::size_t gi = 0; gi < kGeometries.size(); ++gi) {
        SCOPED_TRACE(std::string(scheme) + " kind " +
                     std::to_string(static_cast<int>(kind)) + " geometry " +
                     std::to_string(gi));
        const Geometry& g = kGeometries[gi];
        const ReliableConv2d conv = make_conv(g);
        const Tensor input = make_input(g);
        const FaultConfig cfg = config_for(kind);

        const auto fast_exec = make_executor(
            scheme, std::make_shared<FaultInjector>(cfg, 1000 + gi));
        const auto oracle_exec = make_executor(
            scheme, std::make_shared<FaultInjector>(cfg, 1000 + gi));

        const ReliableResult fast = conv.forward(input, *fast_exec);
        const ReliableResult oracle =
            conv.forward_generic(input, *oracle_exec);

        expect_outputs_bit_identical(fast.output, oracle.output);
        expect_reports_equal(fast.report, oracle.report);
        expect_executors_equal(*fast_exec, *oracle_exec);
      }
    }
  }
}

TEST(StaticDispatchConv, MatchesGenericForOperandTargetedFaults) {
  const Geometry g = kGeometries[0];
  const ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);
  for (const FaultTarget target :
       {FaultTarget::kOperandA, FaultTarget::kOperandB}) {
    SCOPED_TRACE(static_cast<int>(target));
    const FaultConfig cfg = config_for(FaultKind::kTransient, target);
    const auto fast_exec =
        make_executor("dmr", std::make_shared<FaultInjector>(cfg, 7));
    const auto oracle_exec =
        make_executor("dmr", std::make_shared<FaultInjector>(cfg, 7));
    const ReliableResult fast = conv.forward(input, *fast_exec);
    const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);
    expect_outputs_bit_identical(fast.output, oracle.output);
    expect_reports_equal(fast.report, oracle.report);
    expect_executors_equal(*fast_exec, *oracle_exec);
  }
}

TEST(StaticDispatchConv, FaultFreeFastPathWithNullInjector) {
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    SCOPED_TRACE(scheme);
    const Geometry& g = kGeometries[0];
    const ReliableConv2d conv = make_conv(g);
    const Tensor input = make_input(g);
    const auto fast_exec = make_executor(scheme, nullptr);
    const auto oracle_exec = make_executor(scheme, nullptr);
    const ReliableResult fast = conv.forward(input, *fast_exec);
    const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);
    ASSERT_TRUE(fast.report.ok);
    expect_outputs_bit_identical(fast.output, oracle.output);
    expect_reports_equal(fast.report, oracle.report);
    expect_executors_equal(*fast_exec, *oracle_exec);
  }
}

TEST(StaticDispatchConv, FaultFreeFastPathReplaysInjectorCursor) {
  // A non-null injector of kind kNone still counts executions and
  // advances the round-robin PE cursor on every filter() call; the fast
  // path must replay both in bulk (advance_clean) bit-identically.
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    SCOPED_TRACE(scheme);
    const Geometry& g = kGeometries[2];
    const ReliableConv2d conv = make_conv(g);
    const Tensor input = make_input(g);
    FaultConfig cfg = config_for(FaultKind::kNone);
    cfg.num_pes = 7;  // prime-ish so the cursor position is interesting
    const auto fast_exec =
        make_executor(scheme, std::make_shared<FaultInjector>(cfg, 3));
    const auto oracle_exec =
        make_executor(scheme, std::make_shared<FaultInjector>(cfg, 3));
    const ReliableResult fast = conv.forward(input, *fast_exec);
    const ReliableResult oracle = conv.forward_generic(input, *oracle_exec);
    ASSERT_GT(fast_exec->injector()->stats().executions, 0u);
    expect_outputs_bit_identical(fast.output, oracle.output);
    expect_reports_equal(fast.report, oracle.report);
    expect_executors_equal(*fast_exec, *oracle_exec);
  }
}

TEST(StaticDispatchConv, CustomExecutorFallsBackToGenericPath) {
  // An executor scheme the library does not know must keep working
  // through the virtual interface (scheme_kind() defaults to kCustom).
  class CustomExecutor final : public Executor {
   public:
    using Executor::Executor;
    Qualified<float> mul(float a, float b) override {
      ++stats_.logical_ops;
      return {raw_mul(a, b), true};
    }
    Qualified<float> add(float a, float b) override {
      ++stats_.logical_ops;
      return {raw_add(a, b), true};
    }
    [[nodiscard]] std::string name() const override { return "custom"; }
    [[nodiscard]] int redundancy() const override { return 1; }
  };

  const Geometry& g = kGeometries[0];
  const ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);
  CustomExecutor exec(nullptr);
  const ReliableResult result = conv.forward(input, exec);
  ASSERT_TRUE(result.report.ok);
  EXPECT_EQ(result.report.scheme, "custom");
  expect_outputs_bit_identical(result.output, conv.reference_forward(input));
  EXPECT_EQ(exec.stats().logical_ops, 2 * conv.mac_count(input.shape()));
}

TEST(StaticDispatchConv, MacCountClosedFormMatchesTapWalk) {
  for (const Geometry& g : kGeometries) {
    const ReliableConv2d conv = make_conv(g);
    const Shape in{g.in_c, g.h, g.w};
    const Shape out = conv.output_shape(in);
    // Reference: the original O(out_h*out_w*kh*kw) tap walk.
    std::uint64_t macs = 0;
    for (std::size_t oy = 0; oy < out[1]; ++oy) {
      for (std::size_t ox = 0; ox < out[2]; ++ox) {
        std::uint64_t taps = 0;
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const auto iy = static_cast<std::int64_t>(oy * g.stride + ky) -
                          static_cast<std::int64_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::int64_t>(g.h)) continue;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const auto ix = static_cast<std::int64_t>(ox * g.stride + kx) -
                            static_cast<std::int64_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::int64_t>(g.w)) continue;
            ++taps;
          }
        }
        macs += taps * g.in_c;
      }
    }
    macs *= out[0];
    EXPECT_EQ(conv.mac_count(in), macs)
        << "geometry k=" << g.k << " stride=" << g.stride
        << " pad=" << g.pad;
  }
}

// ------------------------------------------------------ linear kernels

TEST(StaticDispatchLinear, MatchesGenericAcrossSchemesAndKinds) {
  Rng rng(5);
  Tensor weights(Shape{6, 17});
  weights.fill_normal(rng, 0.0f, 0.4f);
  Tensor bias(Shape{6});
  bias.fill_normal(rng, 0.0f, 0.1f);
  const ReliableLinear linear(weights, bias);
  Tensor input(Shape{17});
  input.fill_normal(rng, 0.0f, 1.0f);

  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    for (const FaultKind kind :
         {FaultKind::kNone, FaultKind::kTransient, FaultKind::kIntermittent,
          FaultKind::kPermanent}) {
      SCOPED_TRACE(std::string(scheme) + " kind " +
                   std::to_string(static_cast<int>(kind)));
      FaultConfig cfg = config_for(kind);
      if (kind == FaultKind::kTransient) {
        cfg.probability = 0.02;  // few hundred ops: keep faults likely
      }
      const auto fast_exec =
          make_executor(scheme, std::make_shared<FaultInjector>(cfg, 31));
      const auto oracle_exec =
          make_executor(scheme, std::make_shared<FaultInjector>(cfg, 31));
      const ReliableResult fast = linear.forward(input, *fast_exec);
      const ReliableResult oracle =
          linear.forward_generic(input, *oracle_exec);
      expect_outputs_bit_identical(fast.output, oracle.output);
      expect_reports_equal(fast.report, oracle.report);
      expect_executors_equal(*fast_exec, *oracle_exec);
    }
  }
}

TEST(StaticDispatchLinear, FaultFreeFastPathMatchesReference) {
  Rng rng(9);
  Tensor weights(Shape{4, 12});
  weights.fill_normal(rng, 0.0f, 0.4f);
  Tensor bias(Shape{4});
  bias.fill_normal(rng, 0.0f, 0.1f);
  const ReliableLinear linear(weights, bias);
  Tensor input(Shape{12});
  input.fill_normal(rng, 0.0f, 1.0f);

  const auto exec = make_executor("dmr", nullptr);
  const ReliableResult result = linear.forward(input, *exec);
  ASSERT_TRUE(result.report.ok);
  expect_outputs_bit_identical(result.output,
                               linear.reference_forward(input));
  EXPECT_EQ(result.report.logical_ops, 2u * 4 * 12);
  EXPECT_EQ(result.report.commits, result.report.logical_ops);
  EXPECT_EQ(exec->stats().executions, 2u * result.report.logical_ops);
}

// ----------------------------------------------------------- layer DMR

TEST(StaticDispatchLayerDmr, MatchesGenericFaultFreeAndFaulty) {
  const Geometry& g = kGeometries[0];
  const ReliableConv2d ref = make_conv(g);
  ReliabilityPolicy policy;
  policy.max_retries_per_op = 64;
  policy.bucket_ceiling = 200;
  const LayerDmrConv2d layer(ref.weights(), ref.bias(), ref.spec(), policy);
  const Tensor input = make_input(g);

  for (const FaultKind kind :
       {FaultKind::kNone, FaultKind::kTransient, FaultKind::kPermanent}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const FaultConfig cfg = config_for(kind);
    const auto fast_exec =
        make_executor("simplex", std::make_shared<FaultInjector>(cfg, 77));
    const auto oracle_exec =
        make_executor("simplex", std::make_shared<FaultInjector>(cfg, 77));
    const ReliableResult fast = layer.forward(input, *fast_exec);
    const ReliableResult oracle = layer.forward_generic(input, *oracle_exec);
    expect_outputs_bit_identical(fast.output, oracle.output);
    expect_reports_equal(fast.report, oracle.report);
    expect_executors_equal(*fast_exec, *oracle_exec);
  }
}

TEST(StaticDispatchLayerDmr, FaultFreeFastPathMatchesReference) {
  const Geometry& g = kGeometries[1];
  const ReliableConv2d ref = make_conv(g);
  const LayerDmrConv2d layer(ref.weights(), ref.bias(), ref.spec());
  const Tensor input = make_input(g);
  const auto exec = make_executor("simplex", nullptr);
  const ReliableResult result = layer.forward(input, *exec);
  ASSERT_TRUE(result.report.ok);
  expect_outputs_bit_identical(result.output, ref.reference_forward(input));
  // Two unqualified layer passes, two logical ops per MAC each.
  EXPECT_EQ(result.report.logical_ops,
            4 * ref.mac_count(input.shape()));
  EXPECT_EQ(exec->stats().logical_ops, result.report.logical_ops);
  EXPECT_EQ(result.report.commits, 1u);
}

// ------------------------------------------ campaigns: 1/2/8 threads

CampaignSummary dispatch_campaign(const ReliableConv2d& conv,
                                  const Tensor& input, const Tensor& golden,
                                  const char* scheme, std::size_t runs,
                                  bool generic) {
  const auto make_exec = [&](std::size_t run) {
    FaultConfig cfg = config_for(FaultKind::kTransient);
    cfg.probability = 5e-4;
    return make_executor(scheme,
                         std::make_shared<FaultInjector>(cfg, 4000 + run));
  };
  const auto classify = [&](std::size_t, const ReliableResult& result,
                            Executor& exec) {
    return hybridcnn::faultsim::classify(exec.injector()->stats().faults > 0,
                                         !result.report.ok,
                                         result.output == golden);
  };
  if (!generic) {
    return conv.forward_campaign(input, runs, make_exec, classify);
  }
  return hybridcnn::faultsim::run_campaign(runs, [&](std::size_t run) {
    const auto exec = make_exec(run);
    const ReliableResult result = conv.forward_generic(input, *exec);
    return classify(run, result, *exec);
  });
}

// -------------------------------------------- report-free statistics mode

void expect_stats_only_report(const ExecutionReport& lean,
                              const ExecutionReport& full) {
  // kStatsOnly contract: ok/stage/scheme carry the verdict, every
  // numeric counter stays at its default.
  EXPECT_EQ(lean.ok, full.ok);
  EXPECT_EQ(lean.stage, full.stage);
  EXPECT_EQ(lean.scheme, full.scheme);
  EXPECT_EQ(lean.logical_ops, 0u);
  EXPECT_EQ(lean.detected_errors, 0u);
  EXPECT_EQ(lean.retries, 0u);
  EXPECT_EQ(lean.corrected_errors, 0u);
  EXPECT_EQ(lean.commits, 0u);
  EXPECT_EQ(lean.rollbacks, 0u);
  EXPECT_EQ(lean.bucket_peak, 0u);
  EXPECT_FALSE(lean.bucket_exhausted);
  EXPECT_EQ(lean.failed_op_index, -1);
}

TEST(StatsOnlyMode, ConvKeepsBitsVerdictAndExecutorState) {
  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    for (const FaultKind kind :
         {FaultKind::kNone, FaultKind::kTransient, FaultKind::kPermanent}) {
      SCOPED_TRACE(std::string(scheme) + " kind " +
                   std::to_string(static_cast<int>(kind)));
      const Geometry& g = kGeometries[0];
      const ReliableConv2d conv = make_conv(g);
      const Tensor input = make_input(g);
      const FaultConfig cfg = config_for(kind);

      const auto lean_exec =
          make_executor(scheme, std::make_shared<FaultInjector>(cfg, 555));
      const auto full_exec =
          make_executor(scheme, std::make_shared<FaultInjector>(cfg, 555));
      const ReliableResult lean =
          conv.forward(input, *lean_exec, ReportMode::kStatsOnly);
      const ReliableResult full =
          conv.forward(input, *full_exec, ReportMode::kFull);

      expect_outputs_bit_identical(lean.output, full.output);
      expect_stats_only_report(lean.report, full.report);
      expect_executors_equal(*lean_exec, *full_exec);
    }
  }
}

TEST(StatsOnlyMode, LinearKeepsBitsVerdictAndExecutorState) {
  Rng rng(5);
  Tensor weights(Shape{6, 17});
  weights.fill_normal(rng, 0.0f, 0.4f);
  Tensor bias(Shape{6});
  bias.fill_normal(rng, 0.0f, 0.1f);
  const ReliableLinear linear(weights, bias);
  Tensor input(Shape{17});
  input.fill_normal(rng, 0.0f, 1.0f);

  for (const FaultKind kind : {FaultKind::kNone, FaultKind::kPermanent}) {
    SCOPED_TRACE(static_cast<int>(kind));
    FaultConfig cfg = config_for(kind);
    const auto lean_exec =
        make_executor("dmr", std::make_shared<FaultInjector>(cfg, 77));
    const auto full_exec =
        make_executor("dmr", std::make_shared<FaultInjector>(cfg, 77));
    const ReliableResult lean =
        linear.forward(input, *lean_exec, ReportMode::kStatsOnly);
    const ReliableResult full =
        linear.forward(input, *full_exec, ReportMode::kFull);
    expect_outputs_bit_identical(lean.output, full.output);
    expect_stats_only_report(lean.report, full.report);
    expect_executors_equal(*lean_exec, *full_exec);
  }
}

TEST(StatsOnlyMode, CampaignSummariesMatchFullReports) {
  // A campaign judged only on report.ok and output bits must reduce to
  // the same summary in both modes — that is the whole point of the
  // report-free sweep.
  const Geometry& g = kGeometries[0];
  const ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);
  const Tensor golden = conv.reference_forward(input);
  constexpr std::size_t kRuns = 24;

  const auto make_exec = [&](std::size_t run) {
    FaultConfig cfg = config_for(FaultKind::kTransient);
    cfg.probability = 5e-4;
    return make_executor("dmr",
                         std::make_shared<FaultInjector>(cfg, 9000 + run));
  };
  const auto classify = [&](std::size_t, const ReliableResult& result,
                            Executor& exec) {
    return hybridcnn::faultsim::classify(exec.injector()->stats().faults > 0,
                                         !result.report.ok,
                                         result.output == golden);
  };
  const CampaignSummary full = conv.forward_campaign(
      input, kRuns, make_exec, classify, ReportMode::kFull);
  const CampaignSummary lean = conv.forward_campaign(
      input, kRuns, make_exec, classify, ReportMode::kStatsOnly);
  EXPECT_EQ(full.runs, lean.runs);
  EXPECT_EQ(full.correct, lean.correct);
  EXPECT_EQ(full.corrected, lean.corrected);
  EXPECT_EQ(full.detected_abort, lean.detected_abort);
  EXPECT_EQ(full.silent_corruption, lean.silent_corruption);
}

TEST(StaticDispatchCampaign, SummariesMatchGenericAtEveryThreadCount) {
  const Geometry& g = kGeometries[0];
  const ReliableConv2d conv = make_conv(g);
  const Tensor input = make_input(g);
  const Tensor golden = conv.reference_forward(input);
  constexpr std::size_t kRuns = 24;

  for (const char* scheme : {"simplex", "dmr", "tmr"}) {
    SCOPED_TRACE(scheme);
    std::vector<CampaignSummary> summaries;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ComputeContext::set_global_threads(threads);
      summaries.push_back(
          dispatch_campaign(conv, input, golden, scheme, kRuns, false));
      summaries.push_back(
          dispatch_campaign(conv, input, golden, scheme, kRuns, true));
    }
    ComputeContext::set_global_threads(1);
    for (std::size_t i = 1; i < summaries.size(); ++i) {
      EXPECT_EQ(summaries[0].runs, summaries[i].runs);
      EXPECT_EQ(summaries[0].correct, summaries[i].correct);
      EXPECT_EQ(summaries[0].corrected, summaries[i].corrected);
      EXPECT_EQ(summaries[0].detected_abort, summaries[i].detected_abort);
      EXPECT_EQ(summaries[0].silent_corruption,
                summaries[i].silent_corruption);
    }
  }
}

}  // namespace
