// Tensor and Shape semantics.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;
using hybridcnn::util::Rng;

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.count(), 24u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[2], 4u);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, EmptyShapeCountsOne) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.count(), 1u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
}

TEST(Shape, RejectsZeroDimension) {
  EXPECT_THROW((Shape{1, 0, 2}), std::invalid_argument);
}

TEST(Shape, RejectsRankAboveFour) {
  EXPECT_THROW((Shape{1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Shape, DimOutOfRangeThrows) {
  const Shape s{2, 2};
  EXPECT_THROW(static_cast<void>(s.dim(2)), std::out_of_range);
}

TEST(Tensor, ZeroInitialised) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.count(), 6u);
  for (std::size_t i = 0; i < t.count(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  const Tensor t(Shape{4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, VectorConstructorValidatesCount) {
  EXPECT_THROW(Tensor(Shape{3}, std::vector<float>{1.0f, 2.0f}),
               std::invalid_argument);
  const Tensor ok(Shape{2}, std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(ok[1], 2.0f);
}

TEST(Tensor, BoundsCheckedAt) {
  Tensor t(Shape{2});
  EXPECT_NO_THROW(t.at(1));
  EXPECT_THROW(t.at(2), std::out_of_range);
}

TEST(Tensor, At4Indexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
  EXPECT_THROW(t.at4(2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at4(0, 3, 0, 0), std::out_of_range);
}

TEST(Tensor, At3And2Indexing) {
  Tensor t3(Shape{2, 3, 4});
  t3.at3(1, 2, 3) = 1.0f;
  EXPECT_EQ(t3[(1 * 3 + 2) * 4 + 3], 1.0f);
  EXPECT_THROW(t3.at3(2, 0, 0), std::out_of_range);

  Tensor t2(Shape{3, 4});
  t2.at2(2, 3) = 9.0f;
  EXPECT_EQ(t2[2 * 4 + 3], 9.0f);
  EXPECT_THROW(t2.at2(0, 4), std::out_of_range);
}

TEST(Tensor, RankMismatchedAccessorsThrow) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW(t.at4(0, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at3(0, 0, 0), std::out_of_range);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 6});
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.shape(), (Shape{3, 4}));
  EXPECT_THROW(t.reshape(Shape{5}), std::invalid_argument);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  const Tensor t(Shape{5}, std::vector<float>{1.0f, 3.0f, 3.0f, 2.0f, 0.0f});
  EXPECT_EQ(t.argmax(), 1u);
}

TEST(Tensor, Sum) {
  const Tensor t(Shape{4}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(t.sum(), 10.0);
}

TEST(Tensor, MaxAbsDiff) {
  const Tensor a(Shape{3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  const Tensor b(Shape{3}, std::vector<float>{1.0f, 2.5f, 2.0f});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 1.0f);
  const Tensor c(Shape{2});
  EXPECT_THROW(static_cast<void>(a.max_abs_diff(c)),
               std::invalid_argument);
}

TEST(Tensor, FillNormalStatistics) {
  Rng rng(3);
  Tensor t(Shape{4, 4, 4, 4});
  t.fill_normal(rng, 1.0f, 2.0f);
  const double mean = t.sum() / static_cast<double>(t.count());
  EXPECT_NEAR(mean, 1.0, 0.35);
}

TEST(Tensor, FillUniformRange) {
  Rng rng(4);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -1.0f, 1.0f);
  for (std::size_t i = 0; i < t.count(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(Tensor, EqualityIsShapeAndContent) {
  Tensor a(Shape{2}, std::vector<float>{1.0f, 2.0f});
  Tensor b(Shape{2}, std::vector<float>{1.0f, 2.0f});
  EXPECT_TRUE(a == b);
  b[1] = 3.0f;
  EXPECT_FALSE(a == b);
  Tensor c(Shape{1, 2}, std::vector<float>{1.0f, 2.0f});
  EXPECT_FALSE(a == c);
}

TEST(Tensor, ArgmaxOnEmptyThrows) {
  Tensor t;
  EXPECT_THROW((void)t.argmax(), std::logic_error);
}

}  // namespace
