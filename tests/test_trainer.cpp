// Training-loop plumbing: batching, hooks, evaluation metrics.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace hybridcnn;
using data::DatasetConfig;
using data::Example;
using nn::Evaluation;
using nn::TrainConfig;

/// Tiny linear classifier so each test trains in milliseconds.
std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(3 * 16 * 16, data::kNumClasses);
  nn::init_network(*net, seed);
  return net;
}

std::vector<Example> tiny_data(std::size_t per_class, std::uint64_t seed) {
  DatasetConfig cfg;
  cfg.image_size = 16;
  return data::make_dataset(per_class, cfg, seed);
}

TEST(Trainer, HistoryLengthMatchesEpochs) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  tc.learning_rate = 0.01f;
  const auto history = nn::train(*net, tiny_data(4, 11), tc);
  EXPECT_EQ(history.size(), 4u);
}

TEST(Trainer, HandlesBatchRemainder) {
  // 5 classes x 3 examples = 15, batch 4 -> last batch has 3 samples.
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.learning_rate = 0.01f;
  EXPECT_NO_THROW(nn::train(*net, tiny_data(3, 13), tc));
}

TEST(Trainer, BatchSizeLargerThanDatasetIsOneBatch) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 10000;
  tc.learning_rate = 0.01f;
  EXPECT_NO_THROW(nn::train(*net, tiny_data(2, 17), tc));
}

TEST(Trainer, AfterStepHookRunsOncePerBatch) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 5;  // 15 examples -> 3 batches per epoch
  tc.learning_rate = 0.01f;
  int calls = 0;
  tc.after_step = [&calls](nn::Sequential&) { ++calls; };
  nn::train(*net, tiny_data(3, 19), tc);
  EXPECT_EQ(calls, 2 * 3);
}

TEST(Trainer, TrainingLeavesNetworkInInferenceMode) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.learning_rate = 0.01f;
  nn::train(*net, tiny_data(2, 23), tc);
  EXPECT_FALSE(net->training());
}

TEST(Trainer, AccuracyImprovesOnSeparableData) {
  auto net = tiny_net();
  const auto data = tiny_data(20, 29);
  const auto before = nn::evaluate(*net, data, data::kNumClasses);
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 20;
  tc.learning_rate = 0.02f;
  nn::train(*net, data, tc);
  const auto after = nn::evaluate(*net, data, data::kNumClasses);
  EXPECT_GT(after.accuracy, before.accuracy);
  EXPECT_GT(after.accuracy, 0.5);
}

TEST(Evaluate, ConfidenceIsAProbability) {
  auto net = tiny_net();
  const auto data = tiny_data(2, 31);
  const Evaluation eval = nn::evaluate(*net, data, data::kNumClasses);
  EXPECT_GE(eval.mean_true_class_confidence, 0.0);
  EXPECT_LE(eval.mean_true_class_confidence, 1.0);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
}

TEST(Evaluate, RejectsClassCountMismatch) {
  auto net = tiny_net();  // 5-class head
  const auto data = tiny_data(2, 37);
  EXPECT_THROW(nn::evaluate(*net, data, 7), std::invalid_argument);
}

TEST(MeanClassConfidence, SumsToOneAcrossClasses) {
  auto net = tiny_net();
  const auto data = tiny_data(2, 41);
  double total = 0.0;
  for (std::size_t c = 0; c < data::kNumClasses; ++c) {
    total += nn::mean_class_confidence(*net, data, static_cast<int>(c));
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(MeanClassConfidence, RejectsBadClass) {
  auto net = tiny_net();
  const auto data = tiny_data(1, 43);
  EXPECT_THROW(nn::mean_class_confidence(*net, data, -1),
               std::invalid_argument);
  EXPECT_THROW(nn::mean_class_confidence(*net, data, 99),
               std::invalid_argument);
}

}  // namespace
