// Training-loop plumbing: batching, hooks, evaluation metrics, and the
// micro-batched step built on per-slot forward-cache contexts.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "runtime/compute_context.hpp"

namespace {

using namespace hybridcnn;
using data::DatasetConfig;
using data::Example;
using nn::Evaluation;
using nn::TrainConfig;

/// Tiny linear classifier so each test trains in milliseconds.
std::unique_ptr<nn::Sequential> tiny_net(std::uint64_t seed = 1) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(3 * 16 * 16, data::kNumClasses);
  nn::init_network(*net, seed);
  return net;
}

std::vector<Example> tiny_data(std::size_t per_class, std::uint64_t seed) {
  DatasetConfig cfg;
  cfg.image_size = 16;
  return data::make_dataset(per_class, cfg, seed);
}

TEST(Trainer, HistoryLengthMatchesEpochs) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  tc.learning_rate = 0.01f;
  const auto history = nn::train(*net, tiny_data(4, 11), tc);
  EXPECT_EQ(history.size(), 4u);
}

TEST(Trainer, HandlesBatchRemainder) {
  // 5 classes x 3 examples = 15, batch 4 -> last batch has 3 samples.
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.learning_rate = 0.01f;
  EXPECT_NO_THROW(nn::train(*net, tiny_data(3, 13), tc));
}

TEST(Trainer, BatchSizeLargerThanDatasetIsOneBatch) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 10000;
  tc.learning_rate = 0.01f;
  EXPECT_NO_THROW(nn::train(*net, tiny_data(2, 17), tc));
}

TEST(Trainer, AfterStepHookRunsOncePerBatch) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 5;  // 15 examples -> 3 batches per epoch
  tc.learning_rate = 0.01f;
  int calls = 0;
  tc.after_step = [&calls](nn::Sequential&) { ++calls; };
  nn::train(*net, tiny_data(3, 19), tc);
  EXPECT_EQ(calls, 2 * 3);
}

TEST(Trainer, TrainingLeavesNetworkInInferenceMode) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.learning_rate = 0.01f;
  nn::train(*net, tiny_data(2, 23), tc);
  EXPECT_FALSE(net->training());
}

TEST(Trainer, AccuracyImprovesOnSeparableData) {
  auto net = tiny_net();
  const auto data = tiny_data(20, 29);
  const auto before = nn::evaluate(*net, data, data::kNumClasses);
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 20;
  tc.learning_rate = 0.02f;
  nn::train(*net, data, tc);
  const auto after = nn::evaluate(*net, data, data::kNumClasses);
  EXPECT_GT(after.accuracy, before.accuracy);
  EXPECT_GT(after.accuracy, 0.5);
}

TEST(Trainer, MicroBatchedStepMatchesSerialTrainer) {
  // For this net every GEMM stays on the reference kernels, whose
  // per-element accumulation runs in sample order straight into the
  // accumulator — so splitting a batch into contiguous micro-batches
  // reproduces the serial trainer bit for bit: loss history and weights.
  const auto data = tiny_data(4, 47);  // 20 examples
  TrainConfig serial;
  serial.epochs = 3;
  serial.batch_size = 20;
  serial.learning_rate = 0.02f;
  auto serial_net = tiny_net(3);
  const auto serial_hist = nn::train(*serial_net, data, serial);

  TrainConfig micro = serial;
  micro.micro_batch_slots = 4;
  auto micro_net = tiny_net(3);
  const auto micro_hist = nn::train(*micro_net, data, micro);

  ASSERT_EQ(micro_hist.size(), serial_hist.size());
  for (std::size_t e = 0; e < serial_hist.size(); ++e) {
    EXPECT_EQ(micro_hist[e].mean_loss, serial_hist[e].mean_loss) << e;
    EXPECT_EQ(micro_hist[e].train_accuracy, serial_hist[e].train_accuracy)
        << e;
  }
  auto sp = serial_net->params();
  auto mp = micro_net->params();
  ASSERT_EQ(sp.size(), mp.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_EQ(*sp[i].value, *mp[i].value) << sp[i].name;
  }
}

TEST(Trainer, MicroBatchedTrainingIsThreadCountInvariant) {
  // Forwards fan across the pool, backwards reduce in micro-batch order:
  // the whole trajectory must be bit-identical at 1, 2 and 8 threads.
  const auto data = tiny_data(4, 53);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 10;  // 20 examples -> 2 steps/epoch
  tc.learning_rate = 0.02f;
  tc.micro_batch_slots = 3;  // uneven 10/3 split: 3+3+4 rows

  std::vector<std::vector<nn::EpochStats>> runs;
  std::vector<std::unique_ptr<nn::Sequential>> nets;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runtime::ComputeContext::set_global_threads(threads);
    nets.push_back(tiny_net(5));
    runs.push_back(nn::train(*nets.back(), data, tc));
  }
  runtime::ComputeContext::set_global_threads(1);

  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t e = 0; e < runs[0].size(); ++e) {
      EXPECT_EQ(runs[r][e].mean_loss, runs[0][e].mean_loss) << r << ":" << e;
    }
    auto a = nets[0]->params();
    auto b = nets[r]->params();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(*a[i].value, *b[i].value) << a[i].name;
    }
  }
}

TEST(Trainer, MoreMicroSlotsThanBatchRowsIsFine) {
  auto net = tiny_net();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 2;
  tc.learning_rate = 0.01f;
  tc.micro_batch_slots = 8;  // capped at the row count per step
  EXPECT_NO_THROW(nn::train(*net, tiny_data(2, 59), tc));
}

TEST(Evaluate, ConfidenceIsAProbability) {
  auto net = tiny_net();
  const auto data = tiny_data(2, 31);
  const Evaluation eval = nn::evaluate(*net, data, data::kNumClasses);
  EXPECT_GE(eval.mean_true_class_confidence, 0.0);
  EXPECT_LE(eval.mean_true_class_confidence, 1.0);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
}

TEST(Evaluate, RejectsClassCountMismatch) {
  auto net = tiny_net();  // 5-class head
  const auto data = tiny_data(2, 37);
  EXPECT_THROW(nn::evaluate(*net, data, 7), std::invalid_argument);
}

TEST(MeanClassConfidence, SumsToOneAcrossClasses) {
  auto net = tiny_net();
  const auto data = tiny_data(2, 41);
  double total = 0.0;
  for (std::size_t c = 0; c < data::kNumClasses; ++c) {
    total += nn::mean_class_confidence(*net, data, static_cast<int>(c));
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(MeanClassConfidence, RejectsBadClass) {
  auto net = tiny_net();
  const auto data = tiny_data(1, 43);
  EXPECT_THROW(nn::mean_class_confidence(*net, data, -1),
               std::invalid_argument);
  EXPECT_THROW(nn::mean_class_confidence(*net, data, 99),
               std::invalid_argument);
}

}  // namespace
