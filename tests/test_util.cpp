// util substrate: deterministic RNG, CSV/table emitters, image IO.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/crc32c.hpp"
#include "util/csv.hpp"
#include "util/image_io.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using hybridcnn::util::CsvWriter;
using hybridcnn::util::GrayImage;
using hybridcnn::util::read_pgm;
using hybridcnn::util::RgbImage;
using hybridcnn::util::Rng;
using hybridcnn::util::Table;
using hybridcnn::util::write_pgm;
using hybridcnn::util::write_ppm;

TEST(Rng, DeterministicForSeed) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDiffer) {
  Rng a(123, 0);
  Rng b(123, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateApproximatesP) {
  Rng rng(14);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  hybridcnn::util::Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(sw.seconds(), 0.0);
  (void)sink;
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/hybridcnn_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "x,y"});
    csv.row({"2", "quo\"te"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"quo\"\"te\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatch) {
  CsvWriter csv("/tmp/hybridcnn_test2.csv", {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::runtime_error);
  std::remove("/tmp/hybridcnn_test2.csv");
}

TEST(CsvWriter, RejectsUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(ResultsPath, CreatesDirectory) {
  const std::string p =
      hybridcnn::util::results_path("/tmp/hybridcnn_results_test", "f.csv");
  EXPECT_EQ(p, "/tmp/hybridcnn_results_test/f.csv");
  EXPECT_TRUE(std::filesystem::exists("/tmp/hybridcnn_results_test"));
  std::filesystem::remove_all("/tmp/hybridcnn_results_test");
}

TEST(Table, RendersAlignedRows) {
  Table t("demo", {"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "2.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.row({"1"}), std::runtime_error);
}

TEST(Table, FixedFormatsPrecision) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fixed(2.0, 3), "2.000");
}

TEST(ImageIo, PgmRoundTrip) {
  GrayImage img;
  img.width = 5;
  img.height = 3;
  img.pixels = {0,  10,  20,  30,  40,  50,  60, 70,
                80, 90,  100, 150, 200, 250, 255};
  const std::string path = "/tmp/hybridcnn_test.pgm";
  write_pgm(path, img);
  const GrayImage back = read_pgm(path);
  EXPECT_EQ(back.width, img.width);
  EXPECT_EQ(back.height, img.height);
  EXPECT_EQ(back.pixels, img.pixels);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmRejectsSizeMismatch) {
  GrayImage img;
  img.width = 4;
  img.height = 4;
  img.pixels.resize(3);  // wrong
  EXPECT_THROW(write_pgm("/tmp/x.pgm", img), std::runtime_error);
}

TEST(ImageIo, PpmWrites) {
  RgbImage img;
  img.width = 2;
  img.height = 2;
  img.pixels.assign(12, 128);
  const std::string path = "/tmp/hybridcnn_test.ppm";
  write_ppm(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  std::remove(path.c_str());
}

TEST(ImageIo, ReadPgmRejectsMissingFile) {
  EXPECT_THROW(read_pgm("/tmp/definitely_missing_754.pgm"),
               std::runtime_error);
}

// ------------------------------------------------------------- crc32c

TEST(Crc32c, KnownAnswerVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix B / "check"
  // column of the Castagnoli polynomial): crc32c("123456789").
  const char msg[] = "123456789";
  EXPECT_EQ(hybridcnn::util::crc32c(msg, 9), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(hybridcnn::util::crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, IncrementalChainingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole =
      hybridcnn::util::crc32c(msg.data(), msg.size());
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    const std::uint32_t head = hybridcnn::util::crc32c(msg.data(), split);
    const std::uint32_t chained = hybridcnn::util::crc32c(
        msg.data() + split, msg.size() - split, head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  std::vector<std::uint8_t> data(32, 0xA5);
  const std::uint32_t clean = hybridcnn::util::crc32c(data.data(),
                                                      data.size());
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(hybridcnn::util::crc32c(data.data(), data.size()), clean)
        << "bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

// -------------------------------------------------------- atomic file

TEST(AtomicFile, WriteThenReadRoundTrips) {
  const std::string path = "/tmp/hybridcnn_atomic_test.bin";
  const std::vector<std::uint8_t> payload = {0, 1, 2, 255, 128, 7};
  hybridcnn::util::atomic_write_file(path, payload);
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(hybridcnn::util::read_file(path, back));
  EXPECT_EQ(back, payload);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temp file must not survive a successful write";
  std::remove(path.c_str());
}

TEST(AtomicFile, OverwriteReplacesWholeContent) {
  const std::string path = "/tmp/hybridcnn_atomic_test2.bin";
  hybridcnn::util::atomic_write_file(
      path, std::vector<std::uint8_t>(100, 0xAA));
  hybridcnn::util::atomic_write_file(path, std::vector<std::uint8_t>{1, 2});
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(hybridcnn::util::read_file(path, back));
  EXPECT_EQ(back, (std::vector<std::uint8_t>{1, 2}))
      << "no tail of the longer previous file may leak through";
  std::remove(path.c_str());
}

TEST(AtomicFile, EmptyPayloadRoundTrips) {
  const std::string path = "/tmp/hybridcnn_atomic_test3.bin";
  hybridcnn::util::atomic_write_file(path, nullptr, 0);
  std::vector<std::uint8_t> back{9, 9};
  ASSERT_TRUE(hybridcnn::util::read_file(path, back));
  EXPECT_TRUE(back.empty());
  std::remove(path.c_str());
}

TEST(AtomicFile, ReadMissingFileReturnsFalse) {
  std::vector<std::uint8_t> back{1};
  EXPECT_FALSE(hybridcnn::util::read_file(
      "/tmp/definitely_missing_atomic_991.bin", back));
  EXPECT_TRUE(back.empty()) << "a failed read must clear the buffer";
}

TEST(AtomicFile, WriteIntoMissingDirectoryThrows) {
  EXPECT_THROW(hybridcnn::util::atomic_write_file(
                   "/tmp/definitely_missing_dir_991/f.bin",
                   std::vector<std::uint8_t>{1}),
               std::runtime_error);
}

}  // namespace
