// Deterministic vision pipeline: gray, Sobel, threshold, components,
// centroid, radial signature, silhouette extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "data/renderer.hpp"
#include "vision/centroid.hpp"
#include "vision/edge_map.hpp"
#include "vision/gray.hpp"
#include "vision/mask.hpp"
#include "vision/radial.hpp"
#include "vision/sobel.hpp"
#include "vision/threshold.hpp"

namespace {

using namespace hybridcnn::vision;
using hybridcnn::tensor::Shape;
using hybridcnn::tensor::Tensor;

TEST(Gray, Rec601Weights) {
  Tensor img(Shape{3, 1, 1});
  img[0] = 1.0f;   // R
  img[1] = 0.5f;   // G
  img[2] = 0.25f;  // B
  const Tensor g = to_gray(img);
  EXPECT_NEAR(g[0], 0.299f * 1.0f + 0.587f * 0.5f + 0.114f * 0.25f, 1e-6);
}

TEST(Gray, SingleChannelPassThrough) {
  Tensor img(Shape{1, 2, 2}, 0.7f);
  const Tensor g = to_gray(img);
  EXPECT_EQ(g.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(g[3], 0.7f);
}

TEST(Gray, RejectsBadShape) {
  EXPECT_THROW(to_gray(Tensor(Shape{2, 4, 4})), std::invalid_argument);
}

TEST(Sobel, RespondsToVerticalEdge) {
  // Left half dark, right half bright: strong x response, no y response.
  Tensor img(Shape{8, 8});
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 4; x < 8; ++x) img[y * 8 + x] = 1.0f;
  }
  const Tensor gx = sobel_x(img);
  const Tensor gy = sobel_y(img);
  EXPECT_NEAR(gx[3 * 8 + 3], 4.0f, 1e-5);
  EXPECT_NEAR(gy[3 * 8 + 3], 0.0f, 1e-5);
}

TEST(Sobel, MagnitudeIsSymmetricAcrossAxes) {
  Tensor img_v(Shape{8, 8});
  Tensor img_h(Shape{8, 8});
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 4; b < 8; ++b) {
      img_v[a * 8 + b] = 1.0f;  // vertical edge
      img_h[b * 8 + a] = 1.0f;  // horizontal edge
    }
  }
  const Tensor mv = sobel_magnitude(img_v);
  const Tensor mh = sobel_magnitude(img_h);
  EXPECT_NEAR(mv[3 * 8 + 3], mh[3 * 8 + 3], 1e-5);
}

TEST(Sobel, FlatImageHasZeroInteriorResponse) {
  const Tensor img(Shape{6, 6}, 5.0f);
  const Tensor m = sobel_magnitude(img);
  for (std::size_t y = 1; y < 5; ++y) {
    for (std::size_t x = 1; x < 5; ++x) {
      EXPECT_NEAR(m[y * 6 + x], 0.0f, 1e-5);
    }
  }
}

TEST(Threshold, FixedValue) {
  const Tensor img(Shape{1, 4}, std::vector<float>{0.1f, 0.4f, 0.6f, 0.9f});
  const BinaryMask m = threshold(img, 0.5f);
  EXPECT_FALSE(m.at(0, 0));
  EXPECT_FALSE(m.at(0, 1));
  EXPECT_TRUE(m.at(0, 2));
  EXPECT_TRUE(m.at(0, 3));
}

TEST(Threshold, OtsuSeparatesBimodal) {
  Tensor img(Shape{10, 10});
  for (std::size_t i = 0; i < 50; ++i) img[i] = 0.1f;
  for (std::size_t i = 50; i < 100; ++i) img[i] = 0.9f;
  const float t = otsu_threshold(img);
  EXPECT_GE(t, 0.1f);  // threshold semantics are "strictly above"
  EXPECT_LT(t, 0.9f);
  EXPECT_EQ(threshold_otsu(img).count(), 50u);
}

TEST(Threshold, OtsuFlatImage) {
  const Tensor img(Shape{4, 4}, 0.5f);
  EXPECT_FLOAT_EQ(otsu_threshold(img), 0.5f);
}

TEST(Mask, CountAndAccessors) {
  BinaryMask m(3, 4);
  EXPECT_EQ(m.count(), 0u);
  m.set(1, 2, true);
  EXPECT_TRUE(m.at(1, 2));
  EXPECT_EQ(m.count(), 1u);
  EXPECT_TRUE(m.contains(0, 0));
  EXPECT_FALSE(m.contains(-1, 0));
  EXPECT_FALSE(m.contains(3, 0));
}

TEST(Mask, LargestComponentPicksBiggest) {
  BinaryMask m(5, 10);
  m.set(0, 0, true);
  m.set(0, 1, true);
  for (std::size_t x = 4; x < 10; ++x) m.set(3, x, true);
  const BinaryMask big = largest_component(m);
  EXPECT_EQ(big.count(), 6u);
  EXPECT_TRUE(big.at(3, 5));
  EXPECT_FALSE(big.at(0, 0));
}

TEST(Mask, LargestComponentOfEmptyIsEmpty) {
  const BinaryMask empty(4, 4);
  EXPECT_EQ(largest_component(empty).count(), 0u);
}

TEST(Centroid, OfRectangle) {
  BinaryMask m(10, 10);
  for (std::size_t y = 2; y <= 4; ++y) {
    for (std::size_t x = 3; x <= 7; ++x) m.set(y, x, true);
  }
  const auto c = centroid(m);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->y, 3.0, 1e-9);
  EXPECT_NEAR(c->x, 5.0, 1e-9);
}

TEST(Centroid, EmptyMaskIsNullopt) {
  EXPECT_FALSE(centroid(BinaryMask(4, 4)).has_value());
}

TEST(Radial, DiskSignatureIsFlat) {
  const std::size_t n = 64;
  BinaryMask disk(n, n);
  const double r = 20.0;
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      if (std::hypot(y - 32.0, x - 32.0) <= r) disk.set(y, x, true);
    }
  }
  const auto series = shape_signature(disk, 90);
  ASSERT_EQ(series.size(), 90u);
  double lo = series[0];
  double hi = series[0];
  for (const double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(lo, r - 2.0);
  EXPECT_LT(hi, r + 2.0);
}

TEST(Radial, SquareSignatureHasSqrt2Ratio) {
  const std::size_t n = 64;
  BinaryMask square(n, n);
  for (std::size_t y = 16; y < 48; ++y) {
    for (std::size_t x = 16; x < 48; ++x) square.set(y, x, true);
  }
  const auto series = shape_signature(square, 360);
  double lo = series[0];
  double hi = series[0];
  for (const double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(hi / lo, std::sqrt(2.0), 0.12);
}

TEST(Radial, RejectsZeroSamples) {
  BinaryMask m(4, 4);
  m.set(1, 1, true);
  EXPECT_THROW(radial_distance_series(m, {1.0, 1.0}, 0),
               std::invalid_argument);
}

TEST(Radial, EmptyMaskYieldsEmptySignature) {
  EXPECT_TRUE(shape_signature(BinaryMask(8, 8), 16).empty());
}

TEST(EdgeMap, DominantShapeFindsRenderedSign) {
  const Tensor img = hybridcnn::data::render_stop_sign(96, 0.0);
  const BinaryMask shape = dominant_shape(img);
  const double frac = static_cast<double>(shape.count()) / (96.0 * 96.0);
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.8);
  const auto c = centroid(shape);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->y, 48.0, 4.0);
  EXPECT_NEAR(c->x, 48.0, 4.0);
}

TEST(EdgeMap, MaskFromFeatureMapFillsInterior) {
  // Edge ring of a square: the filled mask must cover the interior.
  const std::size_t n = 32;
  Tensor fm(Shape{n, n});
  for (std::size_t i = 8; i < 24; ++i) {
    fm[8 * n + i] = 1.0f;
    fm[23 * n + i] = 1.0f;
    fm[i * n + 8] = 1.0f;
    fm[i * n + 23] = 1.0f;
  }
  const BinaryMask filled = mask_from_feature_map(fm);
  EXPECT_TRUE(filled.at(16, 16)) << "interior must be filled";
  EXPECT_FALSE(filled.at(2, 2));
  EXPECT_GE(filled.count(), 16u * 16u - 8);
}

TEST(EdgeMap, EdgeMagnitudeOfRenderedSignPeaksAtBoundary) {
  const Tensor img = hybridcnn::data::render_stop_sign(64, 0.0);
  const Tensor mag = edge_magnitude(img);
  float centre = mag[32 * 64 + 32];
  float boundary = 0.0f;
  for (std::size_t x = 0; x < 64; ++x) {
    boundary = std::max(boundary, mag[32 * 64 + x]);
  }
  EXPECT_GT(boundary, 4.0f * std::max(centre, 0.05f));
}

}  // namespace
