// Golden regression tests for the deterministic vision pipeline
// (gray -> threshold -> sobel -> edge_map -> centroid) on small synthetic
// shape images, plus scratch-overload vs allocating-overload equivalence
// for every refactored sax/vision function.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "runtime/workspace.hpp"
#include "sax/breakpoints.hpp"
#include "sax/paa.hpp"
#include "sax/sax_word.hpp"
#include "sax/shape_match.hpp"
#include "sax/znorm.hpp"
#include "tensor/tensor.hpp"
#include "vision/centroid.hpp"
#include "vision/edge_map.hpp"
#include "vision/gray.hpp"
#include "vision/mask.hpp"
#include "vision/radial.hpp"
#include "vision/sobel.hpp"
#include "vision/threshold.hpp"

namespace {

using namespace hybridcnn;
using tensor::Shape;
using tensor::Tensor;
using vision::BinaryMask;

/// [3, n, n] image: dark background with a bright axis-aligned square
/// covering [lo, hi) x [lo, hi).
Tensor square_image(std::size_t n, std::size_t lo, std::size_t hi) {
  Tensor img(Shape{3, n, n}, 0.1f);
  for (std::size_t y = lo; y < hi; ++y) {
    for (std::size_t x = lo; x < hi; ++x) {
      img.at3(0, y, x) = 0.9f;
      img.at3(1, y, x) = 0.8f;
      img.at3(2, y, x) = 0.7f;
    }
  }
  return img;
}

Tensor random_plane(std::mt19937& rng, std::size_t h, std::size_t w) {
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  Tensor t(Shape{h, w});
  for (std::size_t i = 0; i < t.count(); ++i) t[i] = dist(rng);
  return t;
}

BinaryMask random_mask(std::mt19937& rng, std::size_t h, std::size_t w,
                       double density) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  BinaryMask m(h, w);
  for (auto& v : m.data) v = dist(rng) < density ? 1 : 0;
  return m;
}

void expect_same_mask(const BinaryMask& a, const BinaryMask& b,
                      const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.height, b.height);
  ASSERT_EQ(a.width, b.width);
  EXPECT_EQ(a.data, b.data);
}

// ------------------------------------------------------------------
// Golden regressions on the synthetic square.
// ------------------------------------------------------------------

TEST(VisionPipelineGolden, GrayAppliesRec601Weights) {
  const Tensor img = square_image(16, 4, 12);
  const Tensor gray = vision::to_gray(img);
  ASSERT_EQ(gray.shape(), (Shape{16, 16}));
  // Background: 0.1 everywhere -> luminance 0.1.
  EXPECT_NEAR(gray.at2(0, 0), 0.1f, 1e-6f);
  // Square: 0.299*0.9 + 0.587*0.8 + 0.114*0.7.
  EXPECT_NEAR(gray.at2(8, 8), 0.299f * 0.9f + 0.587f * 0.8f + 0.114f * 0.7f,
              1e-6f);
}

TEST(VisionPipelineGolden, OtsuThresholdSeparatesSquareFromBackground) {
  const Tensor gray = vision::to_gray(square_image(16, 4, 12));
  const BinaryMask mask = vision::threshold_otsu(gray);
  EXPECT_EQ(mask.count(), 8u * 8u);
  EXPECT_TRUE(mask.at(5, 5));
  EXPECT_FALSE(mask.at(0, 0));
}

TEST(VisionPipelineGolden, SobelRespondsOnlyOnSquareBoundary) {
  const Tensor gray = vision::to_gray(square_image(16, 4, 12));
  const Tensor gx = vision::sobel_x(gray);
  // Flat regions: zero response (interior of square and background).
  EXPECT_FLOAT_EQ(gx.at2(8, 8), 0.0f);
  EXPECT_FLOAT_EQ(gx.at2(1, 1), 0.0f);
  // Vertical boundary column: |gx| = 4 * step for a unit vertical edge.
  const float step = gray.at2(8, 8) - gray.at2(8, 0);
  EXPECT_NEAR(std::abs(gx.at2(8, 4)), 4.0f * std::abs(step), 1e-4f);
  // Horizontal boundary has no x-gradient mid-edge.
  const Tensor gy = vision::sobel_y(gray);
  EXPECT_NEAR(std::abs(gy.at2(4, 8)), 4.0f * std::abs(step), 1e-4f);
}

TEST(VisionPipelineGolden, EdgeMapRecoversSquareInterior) {
  const std::size_t n = 32;
  const Tensor gray = vision::to_gray(square_image(n, 8, 24));
  const Tensor edge = vision::sobel_magnitude(gray);
  const BinaryMask silhouette = vision::mask_from_feature_map(edge);

  // The filled silhouette covers (approximately, up to one boundary
  // pixel of morphology) the square's area.
  const std::size_t area = 16 * 16;
  EXPECT_GE(silhouette.count(), area * 3 / 4);
  EXPECT_LE(silhouette.count(), area * 5 / 4);
  EXPECT_TRUE(silhouette.at(15, 15));
  EXPECT_FALSE(silhouette.at(2, 2));

  const auto c = vision::centroid(silhouette);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->y, 15.5, 1.0);
  EXPECT_NEAR(c->x, 15.5, 1.0);
}

TEST(VisionPipelineGolden, CentroidOfRectangleIsItsCentre) {
  BinaryMask m(10, 20);
  for (std::size_t y = 2; y < 8; ++y) {
    for (std::size_t x = 4; x < 16; ++x) m.set(y, x, true);
  }
  const auto c = vision::centroid(m);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->y, 4.5);
  EXPECT_DOUBLE_EQ(c->x, 9.5);
  EXPECT_FALSE(vision::centroid(BinaryMask(4, 4)).has_value());
}

TEST(VisionPipelineGolden, RadialSeriesOfCentredSquareMatchesGeometry) {
  const std::size_t n = 33;
  BinaryMask m(n, n);
  for (std::size_t y = 8; y <= 24; ++y) {
    for (std::size_t x = 8; x <= 24; ++x) m.set(y, x, true);
  }
  const std::vector<double> series = vision::shape_signature(m, 360);
  ASSERT_EQ(series.size(), 360u);
  // Axis-aligned rays hit the edge at the half-side, diagonal rays at
  // half-side * sqrt(2); half-pixel ray marching quantises to 0.5.
  EXPECT_NEAR(series[0], 8.0, 0.75);    // 0 degrees
  EXPECT_NEAR(series[90], 8.0, 0.75);   // 90 degrees
  EXPECT_NEAR(series[45], 8.0 * std::sqrt(2.0), 0.75);
  // Four-fold symmetry of the square.
  EXPECT_NEAR(series[10], series[100], 0.75);
}

// ------------------------------------------------------------------
// Scratch-overload vs allocating-overload equivalence, per function.
// ------------------------------------------------------------------

TEST(VisionScratchEquivalence, ToGray) {
  runtime::Workspace ws;
  for (const std::size_t channels : {1u, 3u}) {
    Tensor img(Shape{channels, 9, 11});
    std::mt19937 rng(1);
    std::uniform_real_distribution<float> dist(0.0f, 1.0f);
    for (std::size_t i = 0; i < img.count(); ++i) img[i] = dist(rng);

    const Tensor expect = vision::to_gray(img);
    runtime::Workspace::Scope scope(ws);
    const std::span<float> got = ws.alloc_span_as<float>(9 * 11);
    vision::to_gray(img, got);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << i;
    }
  }
}

TEST(VisionScratchEquivalence, ThresholdAndOtsu) {
  std::mt19937 rng(2);
  runtime::Workspace ws;
  const Tensor plane = random_plane(rng, 13, 7);

  EXPECT_EQ(vision::otsu_threshold(std::span<const float>(plane.data())),
            vision::otsu_threshold(plane));

  const BinaryMask expect_fixed = vision::threshold(plane, 0.4f);
  const BinaryMask expect_otsu = vision::threshold_otsu(plane);
  runtime::Workspace::Scope scope(ws);
  vision::MaskView got_fixed{13, 7, ws.alloc_as<std::uint8_t>(13 * 7)};
  vision::threshold(plane.data(), 0.4f, got_fixed);
  vision::MaskView got_otsu{13, 7, ws.alloc_as<std::uint8_t>(13 * 7)};
  vision::threshold_otsu(plane.data(), got_otsu);
  for (std::size_t i = 0; i < expect_fixed.data.size(); ++i) {
    EXPECT_EQ(got_fixed.data[i], expect_fixed.data[i]);
    EXPECT_EQ(got_otsu.data[i], expect_otsu.data[i]);
  }
}

TEST(VisionScratchEquivalence, SobelXYAndMagnitude) {
  std::mt19937 rng(3);
  runtime::Workspace ws;
  const Tensor plane = random_plane(rng, 17, 19);
  const Tensor ex = vision::sobel_x(plane);
  const Tensor ey = vision::sobel_y(plane);
  const Tensor emag = vision::sobel_magnitude(plane);

  runtime::Workspace::Scope scope(ws);
  const std::span<float> gx = ws.alloc_span_as<float>(plane.count());
  const std::span<float> gy = ws.alloc_span_as<float>(plane.count());
  const std::span<float> mag = ws.alloc_span_as<float>(plane.count());
  vision::sobel_x(plane.data(), 17, 19, gx);
  vision::sobel_y(plane.data(), 17, 19, gy);
  vision::sobel_magnitude(plane.data(), 17, 19, mag);
  for (std::size_t i = 0; i < plane.count(); ++i) {
    EXPECT_EQ(gx[i], ex[i]);
    EXPECT_EQ(gy[i], ey[i]);
    EXPECT_EQ(mag[i], emag[i]);
  }
}

TEST(VisionScratchEquivalence, MaskMorphologyAndLargestComponent) {
  std::mt19937 rng(4);
  runtime::Workspace ws;
  for (int trial = 0; trial < 10; ++trial) {
    const BinaryMask mask = random_mask(rng, 21, 18, 0.35 + 0.03 * trial);

    const BinaryMask expect_dilated = vision::dilate(mask, 1);
    const BinaryMask expect_eroded = vision::erode(mask, 1);
    const BinaryMask expect_component = vision::largest_component(mask);

    runtime::Workspace::Scope scope(ws);
    BinaryMask got(21, 18);
    vision::dilate(mask.view(), 1, got.view());
    expect_same_mask(got, expect_dilated, "dilate");
    vision::erode(mask.view(), 1, got.view());
    expect_same_mask(got, expect_eroded, "erode");
    vision::largest_component(mask.view(), got.view(), ws);
    expect_same_mask(got, expect_component, "largest_component");
  }
}

TEST(VisionScratchEquivalence, EdgeMagnitudeAndMaskFromFeatureMap) {
  runtime::Workspace ws;
  const Tensor img = square_image(32, 8, 24);
  const Tensor expect_edge = vision::edge_magnitude(img);
  {
    runtime::Workspace::Scope scope(ws);
    const std::span<float> got = ws.alloc_span_as<float>(32 * 32);
    vision::edge_magnitude(img, got, ws);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect_edge[i]);
    }
  }

  std::mt19937 rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    // Mix of structured edges and noise exercises Otsu + flood + erosion.
    Tensor fm = random_plane(rng, 24, 24);
    const Tensor structured = vision::sobel_magnitude(
        vision::to_gray(square_image(24, 5, 19)));
    for (std::size_t i = 0; i < fm.count(); ++i) {
      fm[i] = structured[i] + 0.08f * fm[i];
    }
    const BinaryMask expect = vision::mask_from_feature_map(fm);
    runtime::Workspace::Scope scope(ws);
    BinaryMask got(24, 24);
    vision::mask_from_feature_map(fm.data(), 24, 24, got.view(), ws);
    expect_same_mask(got, expect, "mask_from_feature_map");
  }
}

TEST(VisionScratchEquivalence, RadialSeriesAndShapeSignature) {
  std::mt19937 rng(6);
  runtime::Workspace ws;
  for (int trial = 0; trial < 5; ++trial) {
    const BinaryMask mask = random_mask(rng, 25, 25, 0.5);
    const std::vector<double> expect = vision::shape_signature(mask, 90);
    runtime::Workspace::Scope scope(ws);
    const std::span<double> got = ws.alloc_span_as<double>(90);
    const std::size_t n = vision::shape_signature(mask.view(), got, ws);
    ASSERT_EQ(n, expect.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], expect[i]);

    const auto c = vision::centroid(mask);
    if (c) {
      EXPECT_EQ(vision::centroid(mask.view())->y, c->y);
      EXPECT_EQ(vision::centroid(mask.view())->x, c->x);
      const std::vector<double> expect_radial =
          vision::radial_distance_series(mask, *c, 45);
      const std::span<double> got_radial = ws.alloc_span_as<double>(45);
      vision::radial_distance_series(mask.view(), *c, got_radial);
      for (std::size_t i = 0; i < 45; ++i) {
        EXPECT_EQ(got_radial[i], expect_radial[i]);
      }
    }
  }
  // Empty mask: scratch overload reports zero samples.
  runtime::Workspace::Scope scope(ws);
  const std::span<double> out = ws.alloc_span_as<double>(16);
  EXPECT_EQ(vision::shape_signature(BinaryMask(8, 8).view(), out, ws), 0u);
}

TEST(SaxScratchEquivalence, ZnormPaaAndWord) {
  std::mt19937 rng(7);
  runtime::Workspace ws;
  std::normal_distribution<double> dist(0.0, 2.0);
  std::vector<double> series(200);
  for (double& v : series) v = dist(rng);

  const std::vector<double> expect_z = sax::znormalize(series);
  const std::vector<double> expect_paa = sax::paa(series, 32);
  const sax::SaxConfig cfg{32, 8};
  const std::string expect_word = sax::sax_word(series, cfg);

  runtime::Workspace::Scope scope(ws);
  const std::span<double> z = ws.alloc_span_as<double>(series.size());
  sax::znormalize(series, z);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z[i], expect_z[i]);

  const std::span<double> reduced = ws.alloc_span_as<double>(32);
  sax::paa(series, reduced);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(reduced[i], expect_paa[i]);

  const std::vector<double> bp = sax::gaussian_breakpoints(cfg.alphabet);
  const std::span<char> word = ws.alloc_span_as<char>(cfg.word_length);
  sax::sax_word(series, cfg, bp, word, ws);
  EXPECT_EQ(std::string(word.data(), word.size()), expect_word);
}

TEST(SaxScratchEquivalence, CountCornersAndShapeMatcher) {
  runtime::Workspace ws;
  const sax::ShapeMatchConfig cfg{};
  for (const std::size_t sides : {3u, 6u, 8u}) {
    const std::vector<double> series =
        sax::polygon_signature(sides, 360, 0.19);

    EXPECT_EQ(sax::count_corners(series, ws), sax::count_corners(series));

    const sax::ShapeMatchResult expect =
        sax::match_shape(series, sides, cfg);
    const sax::ShapeMatcher matcher(sides, series.size(), cfg);
    const sax::ShapeMatchResult got =
        matcher.match(std::span<const double>(series), ws);
    EXPECT_EQ(got.match, expect.match);
    EXPECT_EQ(got.distance, expect.distance);
    EXPECT_EQ(got.corners, expect.corners);
    EXPECT_EQ(got.word, expect.word);
    EXPECT_EQ(got.template_word, expect.template_word);
    EXPECT_EQ(got.rotation, expect.rotation);
    EXPECT_TRUE(got.match) << sides;  // analytic polygon matches itself

    // Scratch polygon_signature agrees with the allocating one.
    runtime::Workspace::Scope scope(ws);
    const std::span<double> sig = ws.alloc_span_as<double>(series.size());
    sax::polygon_signature(sides, sig, 0.19);
    for (std::size_t i = 0; i < sig.size(); ++i) {
      EXPECT_EQ(sig[i], series[i]);
    }
  }
}

TEST(SaxScratchEquivalence, ShortSeriesNeverMatches) {
  runtime::Workspace ws;
  const sax::ShapeMatchConfig cfg{};
  const std::vector<double> tiny(8, 1.0);
  EXPECT_FALSE(sax::match_shape(tiny, 8, cfg).match);
  const sax::ShapeMatcher matcher(8, 360, cfg);
  EXPECT_FALSE(
      matcher.match(std::span<const double>(tiny), ws).match);
  EXPECT_THROW(static_cast<void>(matcher.match(
                   std::span<const double>(std::vector<double>(90, 1.0)), ws)),
               std::invalid_argument);
}

}  // namespace
