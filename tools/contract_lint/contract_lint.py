#!/usr/bin/env python3
"""hybridcnn contract linter.

Scans the C++ tree for violations of the project's determinism /
bit-identity contracts (see rules.py for the rule table and
README.md for the catalogue). Findings are textual-level checks: the
linter is deliberately a fast, dependency-free complement to clang-tidy,
not a compiler — it encodes the handful of *project-specific* invariants
no generic tool knows about.

Usage:
    contract_lint.py --compile-commands build/compile_commands.json
    contract_lint.py --root . src/nn/conv2d.cpp src/nn/linear.hpp
    contract_lint.py --list-rules

The file set is the union of translation units listed in
compile_commands.json (filtered to --root/src) and headers found by
walking src/ — one source of truth shared with clang-tidy. Explicit file
arguments replace the discovered set (scoping still applies, by path
relative to --root).

Waivers: a finding on line N is suppressed when line N, or a
comment-only line N-1, carries

    // contract-lint: allow(<rule-name>) <justification>

The justification is mandatory; an allow() with an empty justification
is reported as `bad-waiver`. Multiple rules may be waived at once:
allow(rule-a, rule-b).

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from rules import RULES  # noqa: E402

CXX_SUFFIXES = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".inl")

WAIVER_RE = re.compile(
    r"//\s*contract-lint:\s*allow\(([^)]*)\)\s*(.*)$"
)


@dataclass
class Finding:
    path: str  # repo-relative POSIX path
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """One scanned file: raw text, comment/string-stripped text (same
    length, so offsets map 1:1 to lines), and per-line waivers."""

    path: str  # repo-relative POSIX path
    raw: str
    stripped: str = ""
    # line -> set of waived rule names ("*" waives everything — unused by
    # the shipped rules but keeps the syntax future-proof)
    waivers: dict[int, set[str]] = field(default_factory=dict)
    bad_waiver_lines: list[int] = field(default_factory=list)
    # lines whose non-comment content is blank (waiver-only lines waive
    # the following line)
    comment_only_lines: set[int] = field(default_factory=set)

    def line_of(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1


def strip_comments_and_strings(text: str) -> str:
    """Replaces comments and string/char literal contents with spaces,
    preserving newlines and total length so byte offsets keep mapping to
    the same line numbers."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "str"
                out.append('"')
                i += 1
            elif c == "'":
                mode = "chr"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                mode = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def load_source(root: str, rel_path: str) -> SourceFile | None:
    abs_path = os.path.join(root, rel_path)
    try:
        with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError:
        return None
    src = SourceFile(path=rel_path, raw=raw)
    src.stripped = strip_comments_and_strings(raw)
    raw_lines = raw.split("\n")
    stripped_lines = src.stripped.split("\n")
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if m:
            names = {n.strip() for n in m.group(1).split(",") if n.strip()}
            justification = m.group(2).strip()
            if not names or not justification:
                src.bad_waiver_lines.append(idx)
            else:
                src.waivers.setdefault(idx, set()).update(names)
        if idx <= len(stripped_lines) and not stripped_lines[idx - 1].strip():
            src.comment_only_lines.add(idx)
    return src


def is_waived(src: SourceFile, line: int, rule: str) -> bool:
    for cand in (line, line - 1):
        names = src.waivers.get(cand)
        if not names:
            continue
        if cand == line - 1 and cand not in src.comment_only_lines:
            continue  # trailing waiver on a code line covers only itself
        if rule in names or "*" in names:
            return True
    return False


def match_any(path: str, globs) -> bool:
    for g in globs:
        if fnmatch.fnmatch(path, g):
            return True
        # fnmatch's "*" matches "/", so "src/**" behaves as a prefix
        # glob already; also accept bare directory prefixes for clarity.
        if g.endswith("/**") and path.startswith(g[:-2]):
            return True
    return False


def rule_applies(rule: dict, path: str) -> bool:
    return match_any(path, rule["paths"]) and not match_any(
        path, rule.get("allow_paths", [])
    )


def balanced_span(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Given text[start] == open_ch, returns the offset one past the
    matching close_ch, or -1 if unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


# --------------------------------------------------------------- matchers


def check_regex(rule: dict, src: SourceFile) -> list[Finding]:
    findings = []
    for pattern, message in rule["patterns"]:
        for m in re.finditer(pattern, src.stripped):
            findings.append(
                Finding(src.path, src.line_of(m.start()), rule["name"],
                        f"{message} (matched '{m.group(0).strip()}')")
            )
    return findings


def check_rng_provenance(rule: dict, src: SourceFile) -> list[Finding]:
    findings = []
    text = src.stripped
    name = rule["name"]

    for engine in rule["banned_engines"]:
        for m in re.finditer(engine, text):
            findings.append(
                Finding(src.path, src.line_of(m.start()), name,
                        f"std <random> engine '{m.group(0)}' is banned: use "
                        "util::Rng over an explicit seed")
            )

    seed_patterns = [re.compile(p) for p in rule["seed_arg_patterns"]]

    def first_arg_is_seeded(args: str) -> bool:
        # First top-level argument only: the seed operand.
        depth = 0
        first = []
        for c in args:
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth -= 1
            elif c == "," and depth == 0:
                break
            first.append(c)
        first_arg = "".join(first).strip()
        return any(p.search(first_arg) for p in seed_patterns)

    # Declarations: `util::Rng NAME(args)`, `Rng NAME{args}`,
    # `Rng NAME = expr;`, bare `Rng NAME;`
    decl_re = re.compile(r"\b(?:util::)?Rng\s+(\w+)\s*([({=;])")
    for m in decl_re.finditer(text):
        var, opener = m.group(1), m.group(2)
        line = src.line_of(m.start())
        if opener in "({":
            close = {"(": ")", "{": "}"}[opener]
            end = balanced_span(text, m.end() - 1, opener, close)
            args = text[m.end():end - 1] if end > 0 else ""
            if not first_arg_is_seeded(args):
                findings.append(
                    Finding(src.path, line, name,
                            f"Rng '{var}' is not constructed from an "
                            "explicit seed expression")
                )
        elif opener == "=":
            stmt_end = text.find(";", m.end())
            rhs = text[m.end():stmt_end if stmt_end >= 0 else len(text)]
            if not any(p.search(rhs) for p in seed_patterns):
                findings.append(
                    Finding(src.path, line, name,
                            f"Rng '{var}' is initialised from an expression "
                            "with no visible seed provenance")
                )
        elif opener == ";":
            # Default construction: hidden fixed seed. Members (trailing
            # underscore) are initialised in their constructor's init
            # list, which this textual pass cannot see — leave them to
            # the construction-site checks.
            if not var.endswith("_"):
                findings.append(
                    Finding(src.path, line, name,
                            f"Rng '{var}' is default-constructed: seed "
                            "provenance must be explicit at the "
                            "construction site")
                )

    # Heap construction: make_unique/make_shared<util::Rng>(args)
    mk_re = re.compile(
        r"make_(?:unique|shared)\s*<\s*(?:util::)?Rng\s*>\s*\("
    )
    for m in mk_re.finditer(text):
        end = balanced_span(text, m.end() - 1, "(", ")")
        args = text[m.end():end - 1] if end > 0 else ""
        if not first_arg_is_seeded(args):
            findings.append(
                Finding(src.path, src.line_of(m.start()), name,
                        "heap-constructed Rng is not seeded from an "
                        "explicit seed expression")
            )

    # Temporaries: `Rng(args)` not preceded by an identifier character
    # (excludes declarations handled above and calls like my_rng(...)).
    tmp_re = re.compile(r"(?<![\w.])(?:util::)?Rng\s*\(")
    for m in tmp_re.finditer(text):
        # Skip declaration sites already handled (Rng NAME( ... )).
        if decl_re.match(text, m.start()):
            continue
        end = balanced_span(text, text.index("(", m.start()), "(", ")")
        args = text[text.index("(", m.start()) + 1:end - 1] if end > 0 else ""
        if not args.strip():
            continue  # `Rng()` in a type context (e.g. sizeof) — rare
        if not first_arg_is_seeded(args):
            findings.append(
                Finding(src.path, src.line_of(m.start()), name,
                        "temporary Rng is not constructed from an explicit "
                        "seed expression")
            )
    return findings


def check_unordered_iter(rule: dict, src: SourceFile) -> list[Finding]:
    findings = []
    text = src.stripped
    decl_re = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\s*<")
    names: set[str] = set()
    for m in decl_re.finditer(text):
        end = balanced_span(text, m.end() - 1, "<", ">")
        if end < 0:
            continue
        after = re.match(r"\s*&?\s*(\w+)", text[end:])
        if after:
            names.add(after.group(1))
    if not names:
        return findings
    name_alt = "|".join(re.escape(n) for n in sorted(names))
    range_for_re = re.compile(
        r"for\s*\([^;(){}]*?:\s*(?:this->)?(" + name_alt + r")\b[^()]*\)"
    )
    for m in range_for_re.finditer(text):
        findings.append(
            Finding(src.path, src.line_of(m.start()), rule["name"],
                    f"range-for over unordered container '{m.group(1)}': "
                    "traversal order is implementation-defined")
        )
    begin_re = re.compile(
        r"\b(" + name_alt + r")\s*\.\s*c?r?begin\s*\("
    )
    for m in begin_re.finditer(text):
        findings.append(
            Finding(src.path, src.line_of(m.start()), rule["name"],
                    f"iterator walk over unordered container "
                    f"'{m.group(1)}': traversal order is "
                    "implementation-defined")
        )
    return findings


def check_infer_const(rule: dict, src: SourceFile) -> list[Finding]:
    findings = []
    text = src.stripped
    # Declaration sites only: an infer* token NOT preceded by member
    # access / assignment / return (call sites) and followed by a
    # parameter list whose declaration tail must contain `const`.
    for m in re.finditer(r"\binfer(?:_\w+)?\s*\(", text):
        before = text[:m.start()].rstrip()
        if before.endswith((".", "->", "=", "(", ",", "return", "&&", "||")):
            continue
        # Constructor-style usages or qualified calls (obj.infer handled
        # above; Sequential::infer definitions in .cpp are out of scope —
        # the rule runs on headers).
        paren = text.index("(", m.start())
        end = balanced_span(text, paren, "(", ")")
        if end < 0:
            continue
        tail = text[end:]
        decl_end = len(tail)
        for stop in (";", "{"):
            p = tail.find(stop)
            if p >= 0:
                decl_end = min(decl_end, p)
        tail = tail[:decl_end]
        if re.search(r"\bconst\b", tail):
            continue
        # Parameter-less type contexts (e.g. using declarations) have no
        # identifier before them; require a plausible return type.
        line_start = text.rfind("\n", 0, m.start()) + 1
        prefix = text[line_start:m.start()]
        if not re.search(r"[\w>&\]]\s*$", prefix):
            continue
        findings.append(
            Finding(src.path, src.line_of(m.start()), rule["name"],
                    "inference entry point is not const: the re-entrant "
                    "shared-model contract requires a const infer path")
        )
    return findings


DECL_IN_BODY_RES = [
    # Builtin / std scalar declarations: `std::size_t i = b;`, for-inits.
    re.compile(
        r"\b(?:auto|float|double|bool|char|int|long|short|unsigned|size_t|"
        r"std::size_t|std::u?int\d+_t|u?int\d+_t|std::string)"
        r"\b[\s&*]*(\w+)\s*(?:=|\{|\(|;|,|:)"
    ),
    # Reference bindings: `RunRecord& rec = records[i];` — a body-local
    # alias, typically onto an index-sliced element.
    re.compile(r"\b[A-Za-z_][\w:<>]*\s*&\s*(\w+)\s*="),
    # Class-type value declarations: `tensor::Tensor scratch = ...;`,
    # `ScrubReport sr{};` (type names are capitalised by convention).
    re.compile(r"\b(?:\w+::)*[A-Z]\w*(?:<[\w:,\s*&]*>)?\s+(\w+)\s*(?:=|\{|;|\()"),
]


def lambda_bodies(text: str, call_start: int):
    """Yields (body_text, body_offset) for every lambda argument of the
    parallel_for call whose name starts at call_start."""
    paren = text.find("(", call_start)
    if paren < 0:
        return
    call_end = balanced_span(text, paren, "(", ")")
    if call_end < 0:
        return
    region = text[paren:call_end]
    i = 0
    while i < len(region):
        if region[i] == "[":
            close_b = balanced_span(region, i, "[", "]")
            if close_b < 0:
                break
            j = close_b
            while j < len(region) and region[j] in " \t\n":
                j += 1
            if j < len(region) and region[j] == "(":
                params_end = balanced_span(region, j, "(", ")")
                j = params_end
                while j < len(region) and region[j] in " \t\n":
                    j += 1
                # skip mutable/noexcept/-> Ret
                while j < len(region) and region[j] != "{":
                    if region[j] == ",":
                        break
                    j += 1
            if j < len(region) and region[j] == "{":
                body_end = balanced_span(region, j, "{", "}")
                if body_end < 0:
                    break
                # Parameters count as body-local declarations.
                params = ""
                pj = close_b
                while pj < len(region) and region[pj] in " \t\n":
                    pj += 1
                if pj < len(region) and region[pj] == "(":
                    pe = balanced_span(region, pj, "(", ")")
                    params = region[pj:pe] if pe > 0 else ""
                yield (params + region[j:body_end], paren + pj)
                i = body_end
                continue
        i += 1


ACCUM_RE = re.compile(
    r"(?<![\w\].])((?:\w+(?:\.|->))*\w+)\s*(\+=|-=|\*=|/=|\|=|&=|\^=)"
)
INCR_RE = re.compile(r"(?:\+\+|--)\s*((?:\w+(?:\.|->))*\w+)\b"
                     r"|(?<![\w\].])((?:\w+(?:\.|->))*\w+)\s*(?:\+\+|--)")


def check_parallel_accum(rule: dict, src: SourceFile) -> list[Finding]:
    findings = []
    text = src.stripped
    for call in re.finditer(r"\bparallel_for(?:_chunks)?\s*\(", text):
        for body, body_off in lambda_bodies(text, call.start()):
            local_names = {d.group(1) for decl_re in DECL_IN_BODY_RES
                           for d in decl_re.finditer(body)}
            for b in re.finditer(r"\[([^\]]*)\]", body):  # structured bindings
                for piece in b.group(1).split(","):
                    piece = piece.strip().lstrip("&").strip()
                    if piece.isidentifier():
                        local_names.add(piece)

            def base_ident(chain: str) -> str:
                return re.split(r"\.|->", chain)[0]

            def flag(chain: str, offset: int, op_desc: str):
                base = base_ident(chain)
                if base in local_names:
                    return
                findings.append(
                    Finding(src.path, src.line_of(body_off + offset),
                            rule["name"],
                            f"{op_desc} to '{chain}' inside a parallel_for "
                            "body: the target is not declared in the body "
                            "and not index-sliced, so chunks would race on "
                            "it and the reduction order would depend on "
                            "scheduling")
                )

            for m in ACCUM_RE.finditer(body):
                flag(m.group(1), m.start(1), "compound assignment")
            for m in INCR_RE.finditer(body):
                chain = m.group(1) or m.group(2)
                flag(chain, m.start(), "increment/decrement")
    return findings


def check_compile_flag(rule: dict, src: SourceFile,
                       compile_index: dict[str, str]) -> list[Finding]:
    cmd = compile_index.get(src.path)
    if cmd is None:
        return []  # headers / files outside the compilation database
    if rule["required_flag"] in cmd:
        return []
    return [
        Finding(src.path, 1, rule["name"],
                f"translation unit is compiled without "
                f"{rule['required_flag']} (compile_commands.json); the "
                "exact-arithmetic subsystems must keep FP contraction off")
    ]


MATCHERS = {
    "regex": lambda rule, src, cc: check_regex(rule, src),
    "rng-provenance": lambda rule, src, cc: check_rng_provenance(rule, src),
    "unordered-iter": lambda rule, src, cc: check_unordered_iter(rule, src),
    "infer-const": lambda rule, src, cc: check_infer_const(rule, src),
    "parallel-accum": lambda rule, src, cc: check_parallel_accum(rule, src),
    "compile-flag": check_compile_flag,
}


# ------------------------------------------------------------------ driver


def discover_files(root: str, compile_commands: str | None):
    """Returns (rel_paths, compile_index). compile_index maps
    repo-relative TU path -> compile command string."""
    files: set[str] = set()
    compile_index: dict[str, str] = {}
    if compile_commands:
        try:
            with open(compile_commands, "r", encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"contract_lint: cannot read {compile_commands}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in entries:
            path = entry["file"]
            if not os.path.isabs(path):
                path = os.path.join(entry.get("directory", ""), path)
            rel = os.path.relpath(os.path.realpath(path),
                                  os.path.realpath(root))
            rel = rel.replace(os.sep, "/")
            if rel.startswith("src/"):
                files.add(rel)
                cmd = entry.get("command")
                if cmd is None and "arguments" in entry:
                    cmd = " ".join(entry["arguments"])
                compile_index[rel] = cmd or ""
    src_dir = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for fn in filenames:
            if fn.endswith(CXX_SUFFIXES):
                rel = os.path.relpath(os.path.join(dirpath, fn), root)
                files.add(rel.replace(os.sep, "/"))
    return sorted(files), compile_index


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json (adds TU discovery "
                         "and enables compile-flag rules)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rule names to run")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    ap.add_argument("files", nargs="*",
                    help="explicit files to scan instead of discovery "
                         "(paths relative to --root or absolute)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule['name']}  [{rule['kind']}]")
            print(f"    scope: {', '.join(rule['paths'])}")
            if rule.get("allow_paths"):
                print(f"    allowlist: {', '.join(rule['allow_paths'])}")
            print(f"    {rule['description']}")
            print()
        return 0

    known = {r["name"] for r in RULES}
    selected = known
    if args.rules:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = selected - known
        if unknown:
            print(f"contract_lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    if args.files:
        rel_files = []
        for f in args.files:
            absf = f if os.path.isabs(f) else os.path.join(root, f)
            rel_files.append(
                os.path.relpath(os.path.realpath(absf),
                                os.path.realpath(root)).replace(os.sep, "/"))
        compile_index = {}
        if args.compile_commands:
            _, compile_index = discover_files(root, args.compile_commands)
        files = rel_files
    else:
        files, compile_index = discover_files(root, args.compile_commands)

    if not files:
        print("contract_lint: no files to scan", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    scanned = 0
    for rel in files:
        src = load_source(root, rel)
        if src is None:
            print(f"contract_lint: cannot read {rel}", file=sys.stderr)
            return 2
        scanned += 1
        for line in src.bad_waiver_lines:
            findings.append(
                Finding(rel, line, "bad-waiver",
                        "waiver must name at least one rule and carry a "
                        "non-empty justification: // contract-lint: "
                        "allow(<rule>) <why>")
            )
        for rule in RULES:
            if rule["name"] not in selected:
                continue
            if not rule_applies(rule, rel):
                continue
            matcher = MATCHERS[rule["kind"]]
            for f in matcher(rule, src, compile_index):
                if not is_waived(src, f.line, f.rule):
                    findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    rule_word = "rule" if len(selected) == 1 else "rules"
    print(f"contract_lint: {scanned} files, {len(selected)} {rule_word}, "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
