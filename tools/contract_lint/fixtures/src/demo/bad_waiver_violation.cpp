// Fixture: trips `bad-waiver` (and only it) — waivers without a
// justification are themselves findings.
namespace demo {

// contract-lint: allow(nondet-source)
int justification_missing() { return 7; }

// contract-lint: allow()
int rule_name_missing() { return 8; }

}  // namespace demo
