// Fixture: trips `nondet-source` (and only it).
#include <cstdlib>
#include <random>

namespace demo {

unsigned wall_clock_seed() {
  return static_cast<unsigned>(std::random_device{}());
}

unsigned hidden_global_draw() { return static_cast<unsigned>(rand()); }

}  // namespace demo
