// Fixture: same content as nondet_source_violation.cpp, every finding
// waived — the linter must report nothing.
#include <cstdlib>
#include <random>

namespace demo {

unsigned wall_clock_seed() {
  // contract-lint: allow(nondet-source) fixture demonstrating a justified waiver
  return static_cast<unsigned>(std::random_device{}());
}

unsigned hidden_global_draw() {
  return static_cast<unsigned>(rand());  // contract-lint: allow(nondet-source) trailing-comment waiver form
}

}  // namespace demo
