// Fixture: trips `parallel-accum` (and only it).
#include "runtime/thread_pool.hpp"

namespace demo {

float racing_reduction(hybridcnn::runtime::ThreadPool& pool,
                       const float* x, std::size_t n) {
  float total = 0.0f;
  pool.parallel_for(0, n, [&](std::size_t i) {
    total += x[i];  // shared captured scalar: race + scheduling-ordered
  });
  return total;
}

}  // namespace demo
