// Fixture: same content as parallel_accum_violation.cpp with the
// finding waived — the linter must report nothing.
#include "runtime/thread_pool.hpp"

namespace demo {

float racing_reduction(hybridcnn::runtime::ThreadPool& pool,
                       const float* x, std::size_t n) {
  float total = 0.0f;
  pool.parallel_for(0, n, [&](std::size_t i) {
    // contract-lint: allow(parallel-accum) fixture: single-threaded pool in this demo, no race possible
    total += x[i];
  });
  return total;
}

}  // namespace demo
