// Fixture: trips `rng-seed-provenance` (and only it).
#include "util/rng.hpp"

namespace demo {

float magic_constant_rng() {
  hybridcnn::util::Rng rng(42);  // 42 is not a seed-derived expression
  return static_cast<float>(rng.uniform());
}

float default_constructed_rng() {
  hybridcnn::util::Rng fallback;
  return static_cast<float>(fallback.uniform());
}

int banned_std_engine(int hi) {
  std::mt19937 gen(1234);
  return static_cast<int>(gen()) % hi;
}

}  // namespace demo
