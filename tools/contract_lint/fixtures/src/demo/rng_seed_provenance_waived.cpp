// Fixture: same content as rng_seed_provenance_violation.cpp with every
// finding waived — the linter must report nothing.
#include "util/rng.hpp"

namespace demo {

float magic_constant_rng() {
  // contract-lint: allow(rng-seed-provenance) fixture: constant doubles as the documented demo seed
  hybridcnn::util::Rng rng(42);
  return static_cast<float>(rng.uniform());
}

float default_constructed_rng() {
  hybridcnn::util::Rng fallback;  // contract-lint: allow(rng-seed-provenance) default seed is the documented fixture baseline
  return static_cast<float>(fallback.uniform());
}

int banned_std_engine(int hi) {
  // contract-lint: allow(rng-seed-provenance) fixture keeps one std engine to exercise the waiver path
  std::mt19937 gen(1234);
  return static_cast<int>(gen()) % hi;
}

}  // namespace demo
