// Fixture: trips `unordered-iter` (and only it).
#include <unordered_map>

namespace demo {

double reduce_in_hash_order(
    const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;  // accumulation order = hash-table order
  }
  return total;
}

}  // namespace demo
