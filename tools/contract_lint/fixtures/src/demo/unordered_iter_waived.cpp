// Fixture: same content as unordered_iter_violation.cpp with the
// finding waived — the linter must report nothing.
#include <unordered_map>

namespace demo {

double reduce_in_hash_order(
    const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // contract-lint: allow(unordered-iter) fixture: sum is order-independent in exact arithmetic here
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}

}  // namespace demo
