// Fixture: trips `infer-const` (and only it) — a layer header whose
// inference entry points are not const.
#pragma once

namespace demo {

class Tensor;
class Workspace;

class DemoLayer {
 public:
  Tensor infer(const Tensor& input, Workspace& ws);
  Tensor infer_from(const Tensor& input, int start);
};

}  // namespace demo
