// Fixture: same content as infer_const_violation.hpp with every finding
// waived — the linter must report nothing.
#pragma once

namespace demo {

class Tensor;
class Workspace;

class DemoLayer {
 public:
  // contract-lint: allow(infer-const) fixture: migration shim kept mutating for one release
  Tensor infer(const Tensor& input, Workspace& ws);
  Tensor infer_from(const Tensor& input, int start);  // contract-lint: allow(infer-const) fixture: same migration shim
};

}  // namespace demo
