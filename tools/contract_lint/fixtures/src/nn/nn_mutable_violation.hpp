// Fixture: trips `nn-mutable` (and only it) — hidden mutable state in a
// layer class.
#pragma once

#include <cstdint>

namespace demo {

class CountingLayer {
 public:
  float infer(float x) const {
    ++calls_;
    return x;
  }

 private:
  mutable std::uint64_t calls_ = 0;
};

}  // namespace demo
