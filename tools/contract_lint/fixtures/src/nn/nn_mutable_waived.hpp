// Fixture: same content as nn_mutable_violation.hpp with the finding
// waived — the linter must report nothing.
#pragma once

#include <cstdint>

namespace demo {

class CountingLayer {
 public:
  float infer(float x) const {
    ++calls_;
    return x;
  }

 private:
  // contract-lint: allow(nn-mutable) fixture: counter is debug telemetry, never read by inference
  mutable std::uint64_t calls_ = 0;
};

}  // namespace demo
