// Fixture: trips `fp-contract-flag` — the file itself is clean C++; the
// violation is the synthetic compile_commands.json entry the test pairs
// it with, which compiles this reliable/ TU without -ffp-contract=off.
namespace demo {

float mul_then_add(float a, float b, float c) { return a * b + c; }

}  // namespace demo
