// contract-lint: allow(fp-contract-flag) fixture: TU deliberately built contracted to exercise the waiver
// Fixture: same pairing as fp_contract_flag_violation.cpp (a synthetic
// compile command without -ffp-contract=off) but the line-1 waiver above
// suppresses the finding — the linter must report nothing.
namespace demo {

float mul_then_add(float a, float b, float c) { return a * b + c; }

}  // namespace demo
