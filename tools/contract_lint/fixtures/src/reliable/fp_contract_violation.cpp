// Fixture: trips `fp-contract` (and only it) — lives under a
// reliable/ path because the rule is scoped to the exact-arithmetic
// subsystems.
#pragma STDC FP_CONTRACT ON

#include <cmath>

namespace demo {

float fused_accumulate(float acc, float a, float b) {
  return __builtin_fmaf(a, b, acc);
}

}  // namespace demo
