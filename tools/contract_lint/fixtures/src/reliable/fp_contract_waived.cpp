// Fixture: same content as fp_contract_violation.cpp with every finding
// waived — the linter must report nothing.
// contract-lint: allow(fp-contract) fixture: pragma kept to exercise the waiver syntax
#pragma STDC FP_CONTRACT ON

#include <cmath>

namespace demo {

float fused_accumulate(float acc, float a, float b) {
  // contract-lint: allow(fp-contract) fixture: result is never compared against a qualified path
  return __builtin_fmaf(a, b, acc);
}

}  // namespace demo
