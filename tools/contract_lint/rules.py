"""Declarative rule table for the hybridcnn contract linter.

Each rule encodes one written invariant from the subsystem READMEs /
ROADMAP as a machine-checkable pattern. The engine (contract_lint.py)
interprets the `kind` field; everything else here is data, so adding a
rule is an edit to this table plus (for a new kind) one matcher.

Path patterns are fnmatch globs over the repo-relative POSIX path of the
scanned file. `paths` scopes where the rule applies; `allow_paths` carves
out files that implement the very facility the rule protects (the RNG
itself may reference engines; the stopwatch exists to read the clock).

Every rule can be waived per line with an inline comment:

    // contract-lint: allow(<rule-name>) <justification>

on the violating line or the line directly above it. An empty
justification is itself a finding (`bad-waiver`).
"""

RULES = [
    {
        "name": "nondet-source",
        "kind": "regex",
        "description": (
            "Bans nondeterminism sources (wall clocks, std::random_device, "
            "C rand/srand/time) in library code: every stochastic or "
            "time-like input must flow from an explicit seed so reruns are "
            "bit-identical."
        ),
        "paths": ["src/**"],
        "allow_paths": [
            # The stopwatch exists to read the monotonic clock; timing
            # never feeds computation, only reports.
            "src/util/stopwatch.hpp",
            # Serving latency stats timestamp requests with steady_clock;
            # seeds come from the session's FaultSeedStream, never time.
            "src/serve/inference_service.hpp",
            "src/serve/inference_service.cpp",
            # The fabric coordinator reads steady_clock for retry backoff
            # and straggler reassignment — scheduling only. Timing can
            # never reach the merged summary: every shard is a pure
            # function of its descriptor, duplicate completions are
            # dropped by shard id, and the merge order is fixed by the
            # plan (tests lock fabric-vs-monolithic bit-identity).
            "src/campaign_fabric/coordinator.cpp",
        ],
        "patterns": [
            (r"std::random_device", "std::random_device is nondeterministic"),
            (r"\brand\s*\(", "C rand() draws from hidden global state"),
            (r"\bsrand\s*\(", "srand() seeds hidden global state"),
            (r"\btime\s*\(", "time() is a wall-clock seed"),
            (r"\bclock\s*\(", "clock() is a wall-clock source"),
            (r"\bgettimeofday\s*\(", "gettimeofday() is a wall-clock source"),
            (r"\bgetpid\s*\(", "pid-derived values differ across runs"),
            (
                r"(?:system_clock|steady_clock|high_resolution_clock)::now",
                "clock reads in library code make results time-dependent",
            ),
            (
                r"std::this_thread::get_id",
                "thread ids are scheduling-dependent",
            ),
        ],
    },
    {
        "name": "rng-seed-provenance",
        "kind": "rng-provenance",
        "description": (
            "Every RNG must be util::Rng constructed from an explicit seed "
            "expression (a seed parameter/member, a FaultSeedStream draw, "
            "or a fork of such a generator). std <random> engines are "
            "banned outright: the project RNG is the only sanctioned "
            "stochastic source."
        ),
        "paths": ["src/**"],
        "allow_paths": [
            # The RNG implementation itself.
            "src/util/rng.hpp",
            "src/util/rng.cpp",
        ],
        # First constructor argument must match one of these for the
        # construction to count as seed-derived.
        "seed_arg_patterns": [
            r"seed",          # seed, seed_, fault_seed, params.noise_seed, ...
            r"Seed",          # kDefaultSeed, SeedStream helpers
            r"\.fork\s*\(",   # child stream of an already-sanctioned Rng
            r"\.take\s*\(",   # FaultSeedStream::take/take_block
            r"\.peek\s*\(",   # FaultSeedStream::peek
        ],
        "banned_engines": [
            r"std::mt19937",
            r"std::minstd_rand",
            r"std::default_random_engine",
            r"std::ranlux",
            r"std::knuth_b",
        ],
    },
    {
        "name": "unordered-iter",
        "kind": "unordered-iter",
        "description": (
            "Bans iteration over unordered containers: their traversal "
            "order is implementation-defined, so any reduction or output "
            "fed by it breaks the bit-identity contract. Membership "
            "queries and keyed lookup stay fine."
        ),
        "paths": ["src/**"],
        "allow_paths": [],
    },
    {
        "name": "fp-contract",
        "kind": "regex",
        "description": (
            "Bans FMA intrinsics and FP_CONTRACT pragmas in the "
            "exact-arithmetic subsystems (reliable/, faultsim/, core/): a "
            "fused multiply-add rounds once where the qualified executor "
            "path rounds twice, which silently breaks qualified-vs-golden "
            "bit-identity."
        ),
        "paths": ["src/reliable/**", "src/faultsim/**", "src/core/**"],
        "allow_paths": [],
        "patterns": [
            (r"_mm\d*_fmadd", "FMA intrinsic fuses the mul+add rounding"),
            (r"_mm\d*_fmsub", "FMA intrinsic fuses the mul+sub rounding"),
            (r"_mm\d*_fnmadd", "FMA intrinsic fuses the rounding"),
            (r"_mm\d*_fnmsub", "FMA intrinsic fuses the rounding"),
            (r"\bstd::fmaf?\b", "std::fma is a fused multiply-add"),
            (r"\b__builtin_fmaf?\b", "__builtin_fma is a fused multiply-add"),
            (
                r"FP_CONTRACT\s+(?:ON|DEFAULT)",
                "FP_CONTRACT must stay off in exact-arithmetic subsystems",
            ),
        ],
    },
    {
        "name": "fp-contract-flag",
        "kind": "compile-flag",
        "description": (
            "Every translation unit under the exact-arithmetic subsystems "
            "must be compiled with -ffp-contract=off (checked against "
            "compile_commands.json, the same source of truth clang-tidy "
            "uses). The CMakeLists property and the source tree must not "
            "drift apart."
        ),
        "paths": ["src/reliable/**", "src/faultsim/**", "src/core/**"],
        "allow_paths": [],
        "required_flag": "-ffp-contract=off",
    },
    {
        "name": "infer-const",
        "kind": "infer-const",
        "description": (
            "Layer inference entry points (infer/infer_from/infer_until...) "
            "must be const member functions: the re-entrancy contract lets "
            "any number of threads run one shared model, which is only "
            "sound while the infer path cannot mutate the layer."
        ),
        "paths": ["src/nn/*.hpp"],
        "allow_paths": [],
    },
    {
        "name": "nn-mutable",
        "kind": "regex",
        "description": (
            "Bans mutable members in src/nn/: a mutable member is hidden "
            "state a const infer path could write, which would break "
            "re-entrant shared-model inference exactly where the compiler "
            "can no longer see it."
        ),
        "paths": ["src/nn/**"],
        "allow_paths": [],
        "patterns": [
            (
                r"\bmutable\b",
                "mutable state in a layer defeats the const infer contract",
            ),
        ],
    },
    {
        "name": "parallel-accum",
        "kind": "parallel-accum",
        "description": (
            "parallel_for bodies must write only through per-index or "
            "per-chunk disjoint outputs. A compound assignment to a shared "
            "captured scalar inside the body is a cross-thread accumulation "
            "whose order depends on scheduling — a data race and a "
            "bit-identity break at once. Reductions belong outside the "
            "parallel region, in fixed order."
        ),
        "paths": ["src/**"],
        "allow_paths": [],
    },
]
