#!/usr/bin/env python3
"""Fixture tests for the contract linter.

Each rule has a minimal violating fixture and a waived twin under
fixtures/ (a miniature src/ tree, so path-scoped rules apply exactly as
they do on the real repository). The tests assert the contract the CI
gate relies on:

  * every violation fixture trips EXACTLY its rule (exit 1),
  * every waived twin is completely clean (exit 0),
  * every rule in the table has a violation fixture (a new rule without
    fixture coverage fails here),
  * the whole fixture tree aggregates to exactly the expected findings.

Run directly (python3 test_contract_lint.py) or via ctest
(contract_lint_fixtures).
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "contract_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

sys.path.insert(0, HERE)
from rules import RULES  # noqa: E402

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")

# fixture path (relative to fixtures/) -> the one rule it must trip.
VIOLATIONS = {
    "src/demo/nondet_source_violation.cpp": "nondet-source",
    "src/demo/rng_seed_provenance_violation.cpp": "rng-seed-provenance",
    "src/demo/unordered_iter_violation.cpp": "unordered-iter",
    "src/demo/parallel_accum_violation.cpp": "parallel-accum",
    "src/demo/bad_waiver_violation.cpp": "bad-waiver",
    "src/reliable/fp_contract_violation.cpp": "fp-contract",
    "src/reliable/fp_contract_flag_violation.cpp": "fp-contract-flag",
    "src/nn/infer_const_violation.hpp": "infer-const",
    "src/nn/nn_mutable_violation.hpp": "nn-mutable",
}

WAIVED = [
    "src/demo/nondet_source_waived.cpp",
    "src/demo/rng_seed_provenance_waived.cpp",
    "src/demo/unordered_iter_waived.cpp",
    "src/demo/parallel_accum_waived.cpp",
    "src/reliable/fp_contract_waived.cpp",
    "src/reliable/fp_contract_flag_waived.cpp",
    "src/nn/infer_const_waived.hpp",
    "src/nn/nn_mutable_waived.hpp",
]

# Fixtures that only make sense against a compilation database entry:
# the synthetic compile_commands.json below compiles them WITHOUT
# -ffp-contract=off, which is the violation.
NEEDS_COMPILE_COMMANDS = {
    "src/reliable/fp_contract_flag_violation.cpp",
    "src/reliable/fp_contract_flag_waived.cpp",
}


def synthetic_compile_commands(tmpdir: str) -> str:
    entries = []
    for rel in sorted(NEEDS_COMPILE_COMMANDS):
        entries.append({
            "directory": FIXTURES,
            "command": f"c++ -std=c++20 -O2 -c {rel}",
            "file": os.path.join(FIXTURES, rel),
        })
    path = os.path.join(tmpdir, "compile_commands.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entries, f)
    return path


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, LINTER] + args,
        capture_output=True, text=True, cwd=FIXTURES,
    )
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("path"), int(m.group("line")),
                             m.group("rule")))
    return proc.returncode, findings, proc


class ContractLintFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmpdir = tempfile.TemporaryDirectory()
        cls.compile_commands = synthetic_compile_commands(cls.tmpdir.name)

    @classmethod
    def tearDownClass(cls):
        cls.tmpdir.cleanup()

    def lint_file(self, rel):
        args = ["--root", FIXTURES]
        if rel in NEEDS_COMPILE_COMMANDS:
            args += ["--compile-commands", self.compile_commands]
        args.append(rel)
        return run_linter(args)

    def test_every_rule_has_a_violation_fixture(self):
        covered = set(VIOLATIONS.values())
        for rule in RULES:
            self.assertIn(
                rule["name"], covered,
                f"rule '{rule['name']}' has no violation fixture — add "
                "one under tools/contract_lint/fixtures/",
            )

    def test_violation_fixtures_trip_exactly_their_rule(self):
        for rel, expected_rule in VIOLATIONS.items():
            with self.subTest(fixture=rel):
                code, findings, proc = self.lint_file(rel)
                self.assertEqual(
                    code, 1,
                    f"{rel}: expected findings (exit 1), got exit {code}\n"
                    f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}",
                )
                tripped = {rule for (_p, _l, rule) in findings}
                self.assertEqual(
                    tripped, {expected_rule},
                    f"{rel}: expected only '{expected_rule}', got "
                    f"{sorted(tripped)}\n{proc.stdout}",
                )
                self.assertGreaterEqual(len(findings), 1)

    def test_waived_fixtures_are_clean(self):
        for rel in WAIVED:
            with self.subTest(fixture=rel):
                code, findings, proc = self.lint_file(rel)
                self.assertEqual(
                    code, 0,
                    f"{rel}: waivers must suppress every finding, got:\n"
                    f"{proc.stdout}",
                )
                self.assertEqual(findings, [])

    def test_full_fixture_tree_aggregates_expected_rules(self):
        code, findings, proc = run_linter(
            ["--root", FIXTURES,
             "--compile-commands", self.compile_commands])
        self.assertEqual(code, 1, proc.stdout + proc.stderr)
        tripped_by_file = {}
        for path, _line, rule in findings:
            tripped_by_file.setdefault(path, set()).add(rule)
        expected = {rel: {rule} for rel, rule in VIOLATIONS.items()}
        self.assertEqual(tripped_by_file, expected)

    def test_rule_subset_selection(self):
        code, findings, _ = run_linter(
            ["--root", FIXTURES, "--rules", "nondet-source",
             "src/demo/nondet_source_violation.cpp",
             "src/demo/unordered_iter_violation.cpp"])
        self.assertEqual(code, 1)
        self.assertTrue(all(rule == "nondet-source"
                            for (_p, _l, rule) in findings))
        # bad-waiver stays active regardless of subset (it guards the
        # waiver mechanism itself), but these fixtures carry none.

    def test_unknown_rule_is_a_usage_error(self):
        code, _findings, _ = run_linter(
            ["--root", FIXTURES, "--rules", "no-such-rule",
             "src/demo/nondet_source_violation.cpp"])
        self.assertEqual(code, 2)

    def test_list_rules_prints_catalogue(self):
        proc = subprocess.run(
            [sys.executable, LINTER, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for rule in RULES:
            self.assertIn(rule["name"], proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
