#!/usr/bin/env bash
# Kill -9 crash-recovery test for the campaign fabric.
#
# Starts the campaign_fabric example with slow shards and a durable
# checkpoint, SIGKILLs it mid-campaign, damages the checkpoint tail the
# way a torn write would (truncation, then a byte of bit rot), and
# reruns with --resume --verify. The rerun's exit code asserts the
# resumed summary is bit-identical to an uninterrupted monolithic run;
# this script additionally asserts that the resume actually adopted
# durable shards instead of silently starting over.
#
# Usage: fabric_crash_test.sh <path-to-campaign_fabric-binary>
set -euo pipefail

BIN=${1:?usage: fabric_crash_test.sh <path-to-campaign_fabric-binary>}
WORKDIR=$(mktemp -d)
CKPT="$WORKDIR/fabric.ckpt"
trap 'rm -rf "$WORKDIR"' EXIT

FLAGS=(--runs 48 --shard-size 4 --workers 2 --checkpoint "$CKPT")

echo "== phase 1: start campaign, kill -9 mid-flight =="
"$BIN" "${FLAGS[@]}" --shard-ms 150 &
PID=$!

# Wait until at least one shard is durable, then let a few more land.
for _ in $(seq 1 100); do
  [ -s "$CKPT" ] && break
  sleep 0.1
done
if ! [ -s "$CKPT" ]; then
  echo "FAIL: no checkpoint appeared before timeout"
  kill -9 "$PID" 2>/dev/null || true
  exit 1
fi
sleep 0.5
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
SIZE=$(stat -c %s "$CKPT")
echo "killed coordinator; checkpoint holds $SIZE bytes"

echo "== phase 2: tear the checkpoint tail (torn-write model) =="
truncate -s $((SIZE > 3 ? SIZE - 3 : 0)) "$CKPT"

echo "== phase 3: resume and verify bit-identity =="
OUT=$("$BIN" "${FLAGS[@]}" --resume --verify)
echo "$OUT"
if ! echo "$OUT" | grep -Eq "resumed shards: [1-9]"; then
  echo "FAIL: resume adopted no durable shards"
  exit 1
fi

echo "== phase 4: corrupt one checkpoint byte, resume again =="
# Offset 40 sits inside the first record's payload; the CRC must drop
# that record (and everything after it) and the rerun must still verify.
printf '\xff' | dd of="$CKPT" bs=1 seek=40 conv=notrunc status=none
"$BIN" "${FLAGS[@]}" --resume --verify >/dev/null

echo "fabric crash test passed"
